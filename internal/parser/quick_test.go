package parser

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randomProgramText emits a syntactically valid random program.
func randomProgramText(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	nPreds := 2 + rng.Intn(3)
	arity := func(p int) int { return 1 + p%3 }
	consts := []string{"a", "b1", "c_2"}
	vars := []string{"X", "Y", "Zed"}
	for i := 0; i < 1+rng.Intn(4); i++ {
		p := rng.Intn(nPreds)
		args := make([]string, arity(p))
		for j := range args {
			args[j] = consts[rng.Intn(len(consts))]
		}
		fmt.Fprintf(&b, "Q%d(%s).\n", p, strings.Join(args, ","))
	}
	for i := 0; i < 1+rng.Intn(4); i++ {
		p, h := rng.Intn(nPreds), rng.Intn(nPreds)
		bodyArgs := make([]string, arity(p))
		for j := range bodyArgs {
			bodyArgs[j] = vars[rng.Intn(len(vars))]
		}
		headArgs := make([]string, arity(h))
		for j := range headArgs {
			// Mix body vars and fresh (existential) ones.
			if rng.Intn(3) == 0 {
				headArgs[j] = fmt.Sprintf("W%d", j)
			} else {
				headArgs[j] = bodyArgs[rng.Intn(len(bodyArgs))]
			}
		}
		fmt.Fprintf(&b, "Q%d(%s) -> Q%d(%s).\n", p, strings.Join(bodyArgs, ","), h, strings.Join(headArgs, ","))
	}
	return b.String()
}

// canonicalRule renames a rule's variables by first occurrence so that
// rules equal up to renaming get equal strings (tgds.NewSet's
// standardisation is not idempotent on names: "V10" sorts before "V9").
func canonicalRule(s string) string {
	var out strings.Builder
	names := map[string]string{}
	i := 0
	for i < len(s) {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			j := i
			for j < len(s) && (isAlnum(s[j]) || s[j] == '_') {
				j++
			}
			word := s[i:j]
			if canon, ok := names[word]; ok {
				out.WriteString(canon)
			} else {
				canon := fmt.Sprintf("v%d", len(names))
				names[word] = canon
				out.WriteString(canon)
			}
			i = j
			continue
		}
		out.WriteByte(c)
		i++
	}
	return out.String()
}

func isAlnum(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

// Property: Print ∘ Parse is the identity up to variable renaming —
// parsing the printed form yields the same facts and rules structurally
// identical modulo the standardisation names.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		src := randomProgramText(seed % 10000)
		p1, err := Parse(src)
		if err != nil {
			return false
		}
		p2, err := Parse(Print(p1))
		if err != nil {
			return false
		}
		if p1.Database.Len() != p2.Database.Len() || p1.TGDs.Len() != p2.TGDs.Len() {
			return false
		}
		for _, fct := range p1.Database.Atoms() {
			if !p2.Database.Has(fct) {
				return false
			}
		}
		for i := range p1.TGDs.TGDs {
			if canonicalRule(p1.TGDs.TGDs[i].String()) != canonicalRule(p2.TGDs.TGDs[i].String()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: parsing never panics on arbitrary byte soup — errors only.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(junk string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse(junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
