package parser

import (
	"strings"
	"testing"

	"airct/internal/logic"
)

func TestParseFactsAndRules(t *testing.T) {
	prog, err := Parse(`
		# the paper's intro example
		R(a, b).
		R(X, Y) -> R(X, Z).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Database.Len() != 1 {
		t.Errorf("facts = %d", prog.Database.Len())
	}
	if !prog.Database.Has(logic.MustAtom("R", logic.Const("a"), logic.Const("b"))) {
		t.Error("R(a,b) missing")
	}
	if prog.TGDs.Len() != 1 {
		t.Fatalf("rules = %d", prog.TGDs.Len())
	}
	rule := prog.TGDs.TGDs[0]
	if len(rule.Body) != 1 || len(rule.Head) != 1 {
		t.Fatalf("rule shape wrong: %v", rule)
	}
	if len(rule.ExistentialVars()) != 1 {
		t.Errorf("Z must be existential: %v", rule)
	}
}

func TestParseMultipleFactsOneStatement(t *testing.T) {
	prog, err := Parse(`R(a,b), S(b,c).`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Database.Len() != 2 {
		t.Errorf("facts = %d, want 2", prog.Database.Len())
	}
}

func TestParseLabeledRule(t *testing.T) {
	prog, err := Parse(`grow: S(X) -> R(X, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := prog.TGDs.ByLabel("grow"); !ok {
		t.Error("label lost")
	}
}

func TestParseMultiHead(t *testing.T) {
	prog, err := Parse(`R(X,Y,Y) -> R(X,Z,Y), R(Z,Y,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.TGDs.TGDs[0].IsSingleHead() {
		t.Error("expected multi-head")
	}
}

func TestParseExample32(t *testing.T) {
	// Example 3.2 of the paper.
	prog, err := Parse(`
		P(a,b).
		s1: P(X,Y) -> R(X,Y).
		s2: P(X,Y) -> S(X).
		s3: R(X,Y) -> S(X).
		s4: S(X) -> R(X,Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.TGDs.Len() != 4 || prog.Database.Len() != 1 {
		t.Fatalf("program shape wrong: %d rules, %d facts", prog.TGDs.Len(), prog.Database.Len())
	}
	if !prog.TGDs.IsGuarded() {
		t.Error("Example 3.2 is guarded")
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"constant in rule", `R(a, Y) -> S(Y).`, "constant-free"},
		{"variable in fact", `R(a, Y).`, "variable"},
		{"arity clash", `R(a). R(a,b).`, "arity"},
		{"arity clash rule", `R(a,b). R(X) -> S(X).`, "arity"},
		{"missing period", `R(a,b)`, "expected"},
		{"missing arrow rhs", `R(X,Y) -> .`, "expected"},
		{"stray char", `R(a&b).`, "unexpected character"},
		{"labeled fact", `l: R(a).`, "labeled"},
		{"empty head rule", `R(X) -> `, "expected"},
		{"unclosed paren", `R(a,b`, "expected"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseErrorLineNumbers(t *testing.T) {
	_, err := Parse("R(a).\nS(b).\nT(X) -> U(a).\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("want *ParseError, got %T: %v", err, err)
	}
	if pe.Line != 3 {
		t.Errorf("line = %d, want 3", pe.Line)
	}
}

func TestParseComments(t *testing.T) {
	prog, err := Parse(`
		# hash comment
		% percent comment
		// slash comment
		R(a,b). # trailing
	`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Database.Len() != 1 {
		t.Error("comments must be skipped")
	}
}

func TestParseTGDsRejectsFacts(t *testing.T) {
	if _, err := ParseTGDs(`R(a).`); err == nil {
		t.Error("facts must be rejected")
	}
	set, err := ParseTGDs(`R(X,Y) -> S(X).`)
	if err != nil || set.Len() != 1 {
		t.Errorf("ParseTGDs = %v, %v", set, err)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	srcs := []string{
		"R(a,b).\nS(b,c).\n\nR(X,Y), S(Y,Z) -> T(X,Z,W).\n",
		"mh: R(X,Y,Y) -> R(X,Z,Y), R(Z,Y,Y).\n",
		"P(a,b).\nP(X,Y) -> R(X,Y).\nS(X) -> R(X,Y).\n",
	}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := Print(p1)
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse %q: %v", printed, err)
		}
		if p1.Database.Len() != p2.Database.Len() || p1.TGDs.Len() != p2.TGDs.Len() {
			t.Fatalf("round trip changed sizes:\n%s\nvs\n%s", src, printed)
		}
		// Facts must be identical; rules identical up to variable renaming,
		// which Print/Parse preserves verbatim (names survive).
		for _, f := range p1.Database.Atoms() {
			if !p2.Database.Has(f) {
				t.Errorf("fact %v lost in round trip", f)
			}
		}
		for i := range p1.TGDs.TGDs {
			if p1.TGDs.TGDs[i].String() != p2.TGDs.TGDs[i].String() {
				t.Errorf("rule %d changed: %s vs %s", i,
					p1.TGDs.TGDs[i], p2.TGDs.TGDs[i])
			}
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse(`broken(`)
}

func TestZeroArityRejectedGracefully(t *testing.T) {
	// Zero-arity atoms parse as R() — allowed syntactically.
	prog, err := Parse(`R().`)
	if err != nil {
		t.Fatalf("zero-arity fact: %v", err)
	}
	if prog.Database.Len() != 1 {
		t.Error("zero-arity fact lost")
	}
}
