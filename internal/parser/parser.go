// Package parser implements the library's concrete syntax for chase
// programs: a program is a list of statements, each terminated by a period.
//
//	# database facts: arguments are constants
//	R(a, b).
//	S(b, c).
//
//	# TGDs: upper-case-initial identifiers are variables; existential
//	# quantification is implicit in head variables absent from the body
//	R(X, Y), P(Y, Z) -> T(X, Y, W).
//	rule_name: T(X, Y, Z) -> S(Y, W).
//
//	# multi-head TGDs (outside the paper's single-head classes)
//	R(X, Y, Y) -> R(X, Z, Y), R(Z, Y, Y).
//
//	# EGDs: a head of the form X = Y (both variables must occur in the
//	# body) is an equality-generating dependency, e.g. a key constraint
//	key: R(X, Y), R(X, Z) -> Y = Z.
//
// Comments run from '#' or '%' or "//" to end of line. TGDs and EGDs are
// constant-free, matching the paper; a constant inside a rule is a parse
// error.
package parser

import (
	"fmt"
	"strings"
	"unicode"

	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/tgds"
)

// Program is the result of parsing: a database and a TGD set.
type Program struct {
	Database *instance.Database
	TGDs     *tgds.Set
}

// ParseError reports a syntax or semantic error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("parse error at line %d: %s", e.Line, e.Msg)
}

type tokenKind uint8

const (
	tokIdent tokenKind = iota
	tokLParen
	tokRParen
	tokComma
	tokArrow
	tokPeriod
	tokColon
	tokEq
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return &ParseError{Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#' || c == '%':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		case c == '(':
			l.pos++
			return token{tokLParen, "(", l.line}, nil
		case c == ')':
			l.pos++
			return token{tokRParen, ")", l.line}, nil
		case c == ',':
			l.pos++
			return token{tokComma, ",", l.line}, nil
		case c == '.':
			l.pos++
			return token{tokPeriod, ".", l.line}, nil
		case c == ':':
			l.pos++
			return token{tokColon, ":", l.line}, nil
		case c == '=':
			l.pos++
			return token{tokEq, "=", l.line}, nil
		case c == '-':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '>' {
				l.pos += 2
				return token{tokArrow, "->", l.line}, nil
			}
			return token{}, l.errf("unexpected character %q", c)
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			return token{tokIdent, l.src[start:l.pos], l.line}, nil
		default:
			return token{}, l.errf("unexpected character %q", c)
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || unicode.IsDigit(r)
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\''
}

// isVariableName reports whether an identifier denotes a variable inside a
// rule: it begins with an upper-case letter.
func isVariableName(s string) bool {
	for _, r := range s {
		return unicode.IsUpper(r)
	}
	return false
}

type parser struct {
	lex    *lexer
	tok    token
	peeked *token
}

func (p *parser) advance() error {
	if p.peeked != nil {
		p.tok = *p.peeked
		p.peeked = nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peek() (token, error) {
	if p.peeked == nil {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.tok.line, Msg: fmt.Sprintf(format, args...)}
}

// rawAtom is an atom before variable/constant resolution.
type rawAtom struct {
	pred string
	args []string
	line int
}

// parseAtom parses IDENT '(' args ')' with the current token at IDENT.
func (p *parser) parseAtom() (rawAtom, error) {
	if p.tok.kind != tokIdent {
		return rawAtom{}, p.errf("expected predicate name, got %q", p.tok.text)
	}
	ra := rawAtom{pred: p.tok.text, line: p.tok.line}
	if err := p.advance(); err != nil {
		return rawAtom{}, err
	}
	if p.tok.kind != tokLParen {
		return rawAtom{}, p.errf("expected '(' after predicate %s", ra.pred)
	}
	for {
		if err := p.advance(); err != nil {
			return rawAtom{}, err
		}
		if p.tok.kind == tokRParen && len(ra.args) == 0 {
			break
		}
		if p.tok.kind != tokIdent {
			return rawAtom{}, p.errf("expected term, got %q", p.tok.text)
		}
		ra.args = append(ra.args, p.tok.text)
		if err := p.advance(); err != nil {
			return rawAtom{}, err
		}
		if p.tok.kind == tokRParen {
			break
		}
		if p.tok.kind != tokComma {
			return rawAtom{}, p.errf("expected ',' or ')', got %q", p.tok.text)
		}
	}
	if err := p.advance(); err != nil {
		return rawAtom{}, err
	}
	return ra, nil
}

// parseAtomList parses atom (',' atom)*.
func (p *parser) parseAtomList() ([]rawAtom, error) {
	var out []rawAtom
	for {
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		out = append(out, a)
		if p.tok.kind != tokComma {
			return out, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

func toRuleAtom(ra rawAtom) (logic.Atom, error) {
	args := make([]logic.Term, len(ra.args))
	for i, s := range ra.args {
		if !isVariableName(s) {
			return logic.Atom{}, &ParseError{Line: ra.line,
				Msg: fmt.Sprintf("constant %q inside a rule: TGDs are constant-free", s)}
		}
		args[i] = logic.Var(s)
	}
	return logic.NewAtom(logic.Pred(ra.pred, len(ra.args)), args...), nil
}

func toFactAtom(ra rawAtom) (logic.Atom, error) {
	args := make([]logic.Term, len(ra.args))
	for i, s := range ra.args {
		if isVariableName(s) {
			return logic.Atom{}, &ParseError{Line: ra.line,
				Msg: fmt.Sprintf("variable %q inside a fact", s)}
		}
		args[i] = logic.Const(s)
	}
	return logic.NewAtom(logic.Pred(ra.pred, len(ra.args)), args...), nil
}

// Parse parses a full program: facts and TGDs in any order.
func Parse(src string) (*Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	db := instance.NewDatabase()
	var rules []tgds.TGD
	var egds []tgds.EGD
	arities := make(map[string]int)

	checkArity := func(ra rawAtom) error {
		if prev, ok := arities[ra.pred]; ok && prev != len(ra.args) {
			return &ParseError{Line: ra.line,
				Msg: fmt.Sprintf("predicate %s used with arity %d and %d", ra.pred, prev, len(ra.args))}
		}
		arities[ra.pred] = len(ra.args)
		return nil
	}

	for p.tok.kind != tokEOF {
		// Optional label: IDENT ':' before a rule.
		label := ""
		if p.tok.kind == tokIdent {
			if nxt, err := p.peek(); err != nil {
				return nil, err
			} else if nxt.kind == tokColon {
				label = p.tok.text
				if err := p.advance(); err != nil { // move to ':'
					return nil, err
				}
				if err := p.advance(); err != nil { // move past ':'
					return nil, err
				}
			}
		}
		atoms, err := p.parseAtomList()
		if err != nil {
			return nil, err
		}
		for _, ra := range atoms {
			if err := checkArity(ra); err != nil {
				return nil, err
			}
		}
		switch p.tok.kind {
		case tokPeriod:
			// Facts.
			if label != "" {
				return nil, p.errf("facts cannot be labeled")
			}
			for _, ra := range atoms {
				fact, err := toFactAtom(ra)
				if err != nil {
					return nil, err
				}
				if err := db.Add(fact); err != nil {
					return nil, &ParseError{Line: ra.line, Msg: err.Error()}
				}
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tokArrow:
			if err := p.advance(); err != nil {
				return nil, err
			}
			// An EGD head: IDENT '=' IDENT (both variables).
			if nxt, err := p.peek(); err != nil {
				return nil, err
			} else if p.tok.kind == tokIdent && nxt.kind == tokEq {
				egd, err := p.parseEGDHead(label, atoms)
				if err != nil {
					return nil, err
				}
				egds = append(egds, egd)
				continue
			}
			headRaw, err := p.parseAtomList()
			if err != nil {
				return nil, err
			}
			for _, ra := range headRaw {
				if err := checkArity(ra); err != nil {
					return nil, err
				}
			}
			if p.tok.kind != tokPeriod {
				return nil, p.errf("expected '.' after rule head, got %q", p.tok.text)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			body := make([]logic.Atom, len(atoms))
			for i, ra := range atoms {
				if body[i], err = toRuleAtom(ra); err != nil {
					return nil, err
				}
			}
			head := make([]logic.Atom, len(headRaw))
			for i, ra := range headRaw {
				if head[i], err = toRuleAtom(ra); err != nil {
					return nil, err
				}
			}
			rule, err := tgds.New(label, body, head)
			if err != nil {
				return nil, &ParseError{Line: atoms[0].line, Msg: err.Error()}
			}
			rules = append(rules, rule)
		default:
			return nil, p.errf("expected '.' or '->', got %q", p.tok.text)
		}
	}
	set, err := tgds.NewSetWithEGDs(rules, egds)
	if err != nil {
		return nil, err
	}
	return &Program{Database: db, TGDs: set}, nil
}

// parseEGDHead parses the head "X = Y" of an EGD whose body atoms were
// already consumed, with the current token at the left variable. EGD heads
// are a single equality: an equality cannot be mixed with head atoms.
func (p *parser) parseEGDHead(label string, body []rawAtom) (tgds.EGD, error) {
	xTok := p.tok
	if err := p.advance(); err != nil { // move to '='
		return tgds.EGD{}, err
	}
	if err := p.advance(); err != nil { // move past '='
		return tgds.EGD{}, err
	}
	if p.tok.kind != tokIdent {
		return tgds.EGD{}, p.errf("expected variable after '=', got %q", p.tok.text)
	}
	yTok := p.tok
	if err := p.advance(); err != nil {
		return tgds.EGD{}, err
	}
	if p.tok.kind == tokComma {
		return tgds.EGD{}, p.errf("an EGD head is a single equality; cannot mix it with further head atoms")
	}
	if p.tok.kind != tokPeriod {
		return tgds.EGD{}, p.errf("expected '.' after equality head, got %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return tgds.EGD{}, err
	}
	for _, tk := range []token{xTok, yTok} {
		if !isVariableName(tk.text) {
			return tgds.EGD{}, &ParseError{Line: tk.line,
				Msg: fmt.Sprintf("constant %q in an equality head: EGDs equate variables", tk.text)}
		}
	}
	bodyAtoms := make([]logic.Atom, len(body))
	for i, ra := range body {
		var err error
		if bodyAtoms[i], err = toRuleAtom(ra); err != nil {
			return tgds.EGD{}, err
		}
	}
	egd, err := tgds.NewEGD(label, bodyAtoms, logic.Var(xTok.text), logic.Var(yTok.text))
	if err != nil {
		return tgds.EGD{}, &ParseError{Line: body[0].line, Msg: err.Error()}
	}
	return egd, nil
}

// MustParse is Parse that panics on error; for tests and examples with
// literal programs.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

// ParseTGDs parses a program consisting of rules only, rejecting facts.
func ParseTGDs(src string) (*tgds.Set, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if prog.Database.Len() != 0 {
		return nil, fmt.Errorf("parser: unexpected facts in TGD-only input")
	}
	return prog.TGDs, nil
}

// Print renders a program in the concrete syntax accepted by Parse.
func Print(prog *Program) string {
	var b strings.Builder
	for _, fact := range prog.Database.Atoms() {
		b.WriteString(fact.String())
		b.WriteString(".\n")
	}
	if prog.Database.Len() > 0 && (prog.TGDs.Len() > 0 || prog.TGDs.HasEGDs()) {
		b.WriteByte('\n')
	}
	for _, t := range prog.TGDs.TGDs {
		if t.Label != "" && !strings.HasPrefix(t.Label, "σ") {
			b.WriteString(t.Label)
			b.WriteString(": ")
		}
		b.WriteString(t.String())
		b.WriteString(".\n")
	}
	for _, e := range prog.TGDs.EGDs {
		if e.Label != "" && !strings.HasPrefix(e.Label, "ε") {
			b.WriteString(e.Label)
			b.WriteString(": ")
		}
		b.WriteString(e.String())
		b.WriteString(".\n")
	}
	return b.String()
}
