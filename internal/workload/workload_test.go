package workload

import (
	"testing"

	"airct/internal/acyclicity"
	"airct/internal/chase"
	"airct/internal/guarded"
)

func TestCorpusLabelsMatchClassCheckers(t *testing.T) {
	for _, l := range Corpus() {
		l := l
		t.Run(l.Name, func(t *testing.T) {
			if got := l.Set.IsGuarded(); got != l.Guarded {
				t.Errorf("IsGuarded = %v, labeled %v", got, l.Guarded)
			}
			if got := l.Set.IsSticky(); got != l.Sticky {
				t.Errorf("IsSticky = %v, labeled %v", got, l.Sticky)
			}
			if got := l.Set.IsLinear(); got != l.Linear {
				t.Errorf("IsLinear = %v, labeled %v", got, l.Linear)
			}
		})
	}
}

func TestGroundTruthLabelsHoldEmpirically(t *testing.T) {
	// Every diverging corpus member must exhaust a budget from some
	// frozen-body seed; every terminating member must saturate from all of
	// them (three trigger orders each).
	for _, l := range Corpus() {
		l := l
		t.Run(l.Name, func(t *testing.T) {
			diverged := false
			for _, db := range guarded.GenerateSeeds(l.Set, 128) {
				for _, o := range []chase.Options{
					{Variant: chase.Restricted, Strategy: chase.FIFO, MaxSteps: 800, DropSteps: true},
					{Variant: chase.Restricted, Strategy: chase.LIFO, MaxSteps: 800, DropSteps: true},
					{Variant: chase.Restricted, Strategy: chase.Random, Seed: 11, MaxSteps: 800, DropSteps: true},
				} {
					if !chase.RunChase(db, l.Set, o).Terminated() {
						diverged = true
					}
				}
			}
			if diverged && l.Terminates {
				t.Error("labeled terminating but a seed diverged")
			}
			if !diverged && !l.Terminates {
				t.Error("labeled diverging but every seed saturated")
			}
		})
	}
}

func TestSwapIntroIsNotWeaklyAcyclic(t *testing.T) {
	l := SwapIntro(1)
	if acyclicity.IsWeaklyAcyclic(l.Set) {
		t.Error("swap-intro must not be WA — that is its raison d'être")
	}
	if !l.Set.IsSticky() || !l.Set.IsGuarded() {
		t.Error("swap-intro is sticky and guarded")
	}
}

func TestParametricSizes(t *testing.T) {
	if got := DatalogChain(5).Set.Len(); got != 5 {
		t.Errorf("DatalogChain(5) = %d rules", got)
	}
	if got := ExistentialChain(3).Set.Len(); got != 6 {
		t.Errorf("ExistentialChain(3) = %d rules", got)
	}
	if got := LinearCycle(4).Set.Len(); got != 4 {
		t.Errorf("LinearCycle(4) = %d rules", got)
	}
	if got := SwapIntro(3).Set.Len(); got != 8 {
		t.Errorf("SwapIntro(3) = %d rules", got)
	}
}

func TestDatabaseGenerators(t *testing.T) {
	star := StarDatabase("R", 5)
	if star.Len() != 5 {
		t.Errorf("star = %d", star.Len())
	}
	chain := ChainDatabase("R", 5)
	if chain.Len() != 5 {
		t.Errorf("chain = %d", chain.Len())
	}
	l := LinearCycle(2)
	rnd := RandomDatabase(l.Set.Schema(), 20, 5, 7)
	if rnd.Len() == 0 || rnd.Len() > 20 {
		t.Errorf("random = %d", rnd.Len())
	}
	rnd2 := RandomDatabase(l.Set.Schema(), 20, 5, 7)
	if !rnd2.Atoms()[0].Equal(rnd.Atoms()[0]) {
		t.Error("same seed must reproduce")
	}
}

func TestExchangeScenario(t *testing.T) {
	sc := Exchange(10, 1)
	if sc.Program.Database.Len() != 10 {
		t.Errorf("source = %d tuples", sc.Program.Database.Len())
	}
	if !acyclicity.IsWeaklyAcyclic(sc.Program.TGDs) {
		t.Error("exchange mappings must be weakly acyclic")
	}
	run := chase.RunChase(sc.Program.Database, sc.Program.TGDs, chase.Options{Variant: chase.Restricted})
	if !run.Terminated() {
		t.Error("exchange chase must terminate")
	}
	if run.Final.Len() <= 10 {
		t.Error("targets must be materialised")
	}
}

// TestKeyGraphWorkload pins the EGD bench family's invariants: the set
// carries a key EGD, the chase terminates without failing on every strategy,
// equality steps actually fire (the family exists to exercise them), the
// merged instance holds exactly one F value per node, and the generator is
// deterministic given its seed.
func TestKeyGraphWorkload(t *testing.T) {
	prog := KeyGraph(24, 7)
	if !prog.TGDs.HasEGDs() {
		t.Fatal("key-graph must carry its key EGD")
	}
	if acyclicity.IsWeaklyAcyclic(prog.TGDs) != true {
		t.Error("key-graph's TGD part must be weakly acyclic (the EGD-sound termination argument)")
	}
	for _, o := range []chase.Options{
		{Variant: chase.Restricted, Strategy: chase.FIFO, MaxSteps: 20000},
		{Variant: chase.Restricted, Strategy: chase.LIFO, MaxSteps: 20000},
		{Variant: chase.Restricted, Strategy: chase.Random, Seed: 3, MaxSteps: 20000},
	} {
		run := chase.RunChase(prog.Database, prog.TGDs, o)
		if !run.Terminated() {
			t.Fatalf("strategy %v: reason = %v", o.Strategy, run.Reason)
		}
		if run.EqualitySteps == 0 {
			t.Errorf("strategy %v: no equality steps — the family is pointless without them", o.Strategy)
		}
		perNode := map[string]int{}
		for _, a := range run.Final.Atoms() {
			if a.Pred.Name == "F" {
				perNode[a.Args[0].String()]++
			}
		}
		if len(perNode) != 24 {
			t.Errorf("strategy %v: %d nodes carry an F value, want 24", o.Strategy, len(perNode))
		}
		for v, c := range perNode {
			if c != 1 {
				t.Errorf("strategy %v: node %s has %d F values after the key merged them", o.Strategy, v, c)
			}
		}
	}
	again := KeyGraph(24, 7)
	if again.Database.Len() != prog.Database.Len() {
		t.Error("same seed must reproduce the database")
	}
	if KeyGraph(24, 8).Database.String() == prog.Database.String() {
		t.Error("different seeds should differ")
	}
}

func TestOntologyWorkload(t *testing.T) {
	prog := Ontology(20, 3)
	if !prog.TGDs.IsGuarded() {
		t.Error("ontology must be guarded")
	}
	run := chase.RunChase(prog.Database, prog.TGDs, chase.Options{Variant: chase.Restricted})
	if !run.Terminated() {
		t.Error("ontology chase must terminate")
	}
	// Every student must have become a Person with a membership.
	persons := 0
	for _, a := range run.Final.Atoms() {
		if a.Pred.Name == "Person" {
			persons++
		}
	}
	if persons < 20 {
		t.Errorf("persons = %d, want ≥ 20", persons)
	}
}
