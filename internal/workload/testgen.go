package workload

// Random generators behind the property-test suites, promoted here from
// per-package quick_test.go files (chase, buchi) so every package draws its
// conformance inputs from one shared, seed-deterministic source — the same
// generators the conformance corpus and the cross-run cache property tests
// (warm ≡ cold Decide) run on. RandomTGDSet (random.go) is the third member
// of the family; guarded's property tests already use it.

import (
	"fmt"
	"math/rand"
	"strings"

	"airct/internal/buchi"
	"airct/internal/parser"
	"airct/internal/tgds"
)

// RepeatedDecideRequests models the serving workload behind the cross-run
// chase cache (internal/chase.Cache): k independent requests carrying the
// SAME program, each parsed fresh — as a server handling repeated queries
// would hold k distinct Set values of identical content, so any reuse must
// key on content fingerprints, never on pointers. The base family is
// SwapIntro(n): guarded, terminating, and NOT weakly acyclic, so every
// request re-generates and re-chases the full seed pool unless a cache
// steps in.
func RepeatedDecideRequests(n, k int) []*tgds.Set {
	src := SwapIntro(n).Source
	out := make([]*tgds.Set, k)
	for i := range out {
		set, err := parser.ParseTGDs(src)
		if err != nil {
			panic(err)
		}
		out[i] = set
	}
	return out
}

// RandomDatalogProgram generates a random datalog program (no existentials,
// so every chase terminates) with a random database, deterministically from
// the seed. Promoted from internal/chase's quick_test.go; the rng draw
// sequence is preserved, so historic seeds reproduce historic programs.
func RandomDatalogProgram(seed int64) *parser.Program {
	rng := rand.New(rand.NewSource(seed))
	nPreds := 3 + rng.Intn(3)
	arity := func(p int) int { return 1 + (p % 2) }
	var b strings.Builder
	vars := []string{"X", "Y", "Z"}
	atom := func(p int, pool []string) string {
		args := make([]string, arity(p))
		for i := range args {
			args[i] = pool[rng.Intn(len(pool))]
		}
		return fmt.Sprintf("P%d(%s)", p, strings.Join(args, ","))
	}
	nRules := 2 + rng.Intn(4)
	for r := 0; r < nRules; r++ {
		nBody := 1 + rng.Intn(2)
		pool := vars[:1+rng.Intn(len(vars))]
		var body []string
		used := map[string]bool{}
		for i := 0; i < nBody; i++ {
			a := atom(rng.Intn(nPreds), pool)
			body = append(body, a)
			for _, v := range pool {
				if strings.Contains(a, v) {
					used[v] = true
				}
			}
		}
		// Head variables drawn from the variables the body actually uses:
		// genuinely no existentials.
		var usedPool []string
		for _, v := range pool {
			if used[v] {
				usedPool = append(usedPool, v)
			}
		}
		fmt.Fprintf(&b, "%s -> %s.\n", strings.Join(body, ", "), atom(rng.Intn(nPreds), usedPool))
	}
	nFacts := 1 + rng.Intn(5)
	consts := []string{"a", "b", "cc"}
	for f := 0; f < nFacts; f++ {
		p := rng.Intn(nPreds)
		args := make([]string, arity(p))
		for i := range args {
			args[i] = consts[rng.Intn(len(consts))]
		}
		fmt.Fprintf(&b, "P%d(%s).\n", p, strings.Join(args, ","))
	}
	prog, err := parser.Parse(b.String())
	if err != nil {
		panic(err)
	}
	return prog
}

// RandomExistentialProgram generates a random single-head TGD set with
// existential variables plus a database, deterministically from the seed.
// Promoted from internal/chase's triggerindex_test.go (the index-repair
// property's workload generator alongside RandomDatalogProgram); the rng
// draw sequence is preserved.
func RandomExistentialProgram(seed int64) *parser.Program {
	rng := rand.New(rand.NewSource(seed))
	nPreds := 2 + rng.Intn(3)
	arity := func(p int) int { return 1 + (p % 2) }
	var b strings.Builder
	vars := []string{"X", "Y"}
	exist := []string{"V", "W"}
	nRules := 2 + rng.Intn(3)
	for r := 0; r < nRules; r++ {
		bp := rng.Intn(nPreds)
		hp := rng.Intn(nPreds)
		bodyArgs := make([]string, arity(bp))
		for i := range bodyArgs {
			bodyArgs[i] = vars[rng.Intn(len(vars))]
		}
		headArgs := make([]string, arity(hp))
		usedBody := false
		for i := range headArgs {
			if !usedBody || rng.Intn(2) == 0 {
				// Frontier variable: must occur in the body.
				headArgs[i] = bodyArgs[rng.Intn(len(bodyArgs))]
				usedBody = true
			} else {
				headArgs[i] = exist[rng.Intn(len(exist))]
			}
		}
		fmt.Fprintf(&b, "r%d: P%d(%s) -> P%d(%s).\n", r, bp, strings.Join(bodyArgs, ","), hp, strings.Join(headArgs, ","))
	}
	nFacts := 1 + rng.Intn(3)
	for f := 0; f < nFacts; f++ {
		p := rng.Intn(nPreds)
		args := make([]string, arity(p))
		for i := range args {
			args[i] = fmt.Sprintf("c%d", rng.Intn(3))
		}
		fmt.Fprintf(&b, "P%d(%s).\n", p, strings.Join(args, ","))
	}
	return parser.MustParse(b.String())
}

// RandomAutomaton builds a random deterministic Büchi automaton with
// nStates states over a binary alphabet, deterministically from the seed.
// Promoted from internal/buchi's quick_test.go; the rng draw sequence is
// preserved.
func RandomAutomaton(seed int64, nStates int) *buchi.Automaton {
	rng := rand.New(rand.NewSource(seed))
	type key struct {
		state string
		sym   string
	}
	states := make([]string, nStates)
	for i := range states {
		states[i] = fmt.Sprintf("q%d", i)
	}
	trans := make(map[key]string)
	accepting := make(map[string]bool)
	for _, s := range states {
		for _, a := range []string{"0", "1"} {
			if rng.Intn(10) == 0 {
				continue // reject sink
			}
			trans[key{s, a}] = states[rng.Intn(nStates)]
		}
		accepting[s] = rng.Intn(4) == 0
	}
	return &buchi.Automaton{
		Alphabet: []string{"0", "1"},
		Initial:  "q0",
		Step: func(state, sym string) (string, bool) {
			next, ok := trans[key{state, sym}]
			return next, ok
		},
		Accepting: func(state string) bool { return accepting[state] },
	}
}

// ServeRequest is one request of a serving workload: which endpoint of the
// analysis daemon it targets and the .chase program text it carries.
type ServeRequest struct {
	// Endpoint is "decide", "decide-portfolio" or "exists".
	Endpoint string
	// Source is the full program text (facts + TGDs).
	Source string
}

// RepeatedMixedRequests models a termination-analysis daemon's steady
// state: k rounds over a fixed mixed pool of programs sized by n — plain
// ∀∀ decides, portfolio decides and ∀∃ searches, terminating and diverging
// families alike. Every round repeats the same programs (as monitoring,
// CI and retry traffic do), so under ONE shared cross-run cache round 1 is
// cold and rounds 2..k replay; without one, every round pays full price.
// The serving benchmarks (internal/serve) measure that gap end to end.
func RepeatedMixedRequests(n, k int) []ServeRequest {
	grid := StageGrid(n)
	var gridSrc strings.Builder
	for _, a := range grid.Database.Atoms() {
		gridSrc.WriteString(a.String())
		gridSrc.WriteString(".\n")
	}
	for _, t := range grid.TGDs.TGDs {
		gridSrc.WriteString(t.String())
		gridSrc.WriteString(".\n")
	}
	base := []ServeRequest{
		{Endpoint: "decide", Source: SwapIntro(n).Source},
		{Endpoint: "decide-portfolio", Source: SwapIntro(n).Source},
		{Endpoint: "decide", Source: GuardedLadder(n).Source},
		{Endpoint: "decide-portfolio", Source: LinearCycle(n).Source},
		{Endpoint: "decide-portfolio", Source: StickyRelay(n).Source},
		{Endpoint: "exists", Source: gridSrc.String()},
	}
	out := make([]ServeRequest, 0, len(base)*k)
	for round := 0; round < k; round++ {
		out = append(out, base...)
	}
	return out
}

// BurstyMixedRequests models bursty daemon traffic: the same mixed pool as
// RepeatedMixedRequests, but each program arrives in back-to-back bursts of
// `burst` identical requests (a monitoring fleet firing on the same tick, a
// CI matrix fanning out one change) instead of an evenly interleaved
// round-robin. Tail latency separates the two shapes: the first request of
// a cold burst pays the full analysis while its burst-mates queue behind
// the same flight, so p99 tracks the cost of the heaviest program — which
// is exactly what the serving benchmarks' percentile columns measure.
func BurstyMixedRequests(n, k, burst int) []ServeRequest {
	if burst < 1 {
		burst = 1
	}
	base := RepeatedMixedRequests(n, 1)
	out := make([]ServeRequest, 0, len(base)*k*burst)
	for round := 0; round < k; round++ {
		for _, r := range base {
			for i := 0; i < burst; i++ {
				out = append(out, r)
			}
		}
	}
	return out
}
