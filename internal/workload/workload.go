// Package workload generates the labeled TGD families and databases behind
// the experiment suite (EXPERIMENTS.md): parametric guarded/sticky families
// with known CT^res_∀∀ ground truth, database generators (star, chain,
// random), a data-exchange scenario, and a small ontology workload. All
// generators are deterministic given their parameters and seed.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/parser"
	"airct/internal/tgds"
)

// Labeled is a TGD set with its ground truth and class annotations.
type Labeled struct {
	Name string
	// Source is the program text (rules only).
	Source string
	Set    *tgds.Set
	// Guarded/Sticky/Linear record the intended classes (validated by
	// tests against the class checkers).
	Guarded bool
	Sticky  bool
	Linear  bool
	// Terminates is the CT^res_∀∀ ground truth, by construction.
	Terminates bool
}

func mustLabeled(name, src string, guarded, sticky, linear, terminates bool) Labeled {
	set, err := parser.ParseTGDs(src)
	if err != nil {
		panic(fmt.Sprintf("workload: %s: %v", name, err))
	}
	return Labeled{
		Name: name, Source: src, Set: set,
		Guarded: guarded, Sticky: sticky, Linear: linear, Terminates: terminates,
	}
}

// DatalogChain is A_1(X) → A_2(X) → … → A_n(X): terminating, in every
// class, weakly acyclic.
func DatalogChain(n int) Labeled {
	var b strings.Builder
	for i := 1; i < n+1; i++ {
		fmt.Fprintf(&b, "A%d(X) -> A%d(X).\n", i, i+1)
	}
	return mustLabeled(fmt.Sprintf("datalog-chain-%d", n), b.String(), true, true, true, true)
}

// ExistentialChain interleaves existentials that are consumed once:
// A_i(X) → ∃Y R_i(X,Y); R_i(X,Y) → A_{i+1}(Y). Terminating (weakly
// acyclic), guarded, sticky, linear.
func ExistentialChain(n int) Labeled {
	var b strings.Builder
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "A%d(X) -> R%d(X,Y).\n", i, i)
		fmt.Fprintf(&b, "R%d(X,Y) -> A%d(Y).\n", i, i+1)
	}
	return mustLabeled(fmt.Sprintf("existential-chain-%d", n), b.String(), true, true, true, true)
}

// LinearCycle is R_1(X,Y) → ∃Z R_2(Y,Z) → … → R_n(X,Y) → ∃Z R_1(Y,Z):
// diverging (the invented value feeds the next existential forever),
// guarded, sticky, linear.
func LinearCycle(n int) Labeled {
	var b strings.Builder
	for i := 1; i <= n; i++ {
		next := i%n + 1
		fmt.Fprintf(&b, "R%d(X,Y) -> R%d(Y,Z).\n", i, next)
	}
	return mustLabeled(fmt.Sprintf("linear-cycle-%d", n), b.String(), true, true, true, false)
}

// SwapIntro layers the swap+intro pattern: T_i(X,Y) → ∃W T_i(X,W) (always
// pre-satisfied by its own trigger atom) plus T_i(X,Y) → T_i(Y,X), bridged
// by T_i(X,Y) → T_{i+1}(X,Y). Terminating on every database and in every
// derivation order, yet NOT weakly acyclic — the family where the
// restricted-chase analysis genuinely beats the acyclicity baselines.
func SwapIntro(n int) Labeled {
	var b strings.Builder
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "T%d(X,Y) -> T%d(X,W).\n", i, i)
		fmt.Fprintf(&b, "T%d(X,Y) -> T%d(Y,X).\n", i, i)
		if i < n {
			fmt.Fprintf(&b, "T%d(X,Y) -> T%d(X,Y).\n", i, i+1)
		}
	}
	return mustLabeled(fmt.Sprintf("swap-intro-%d", n), b.String(), true, true, true, true)
}

// GuardedLadder is the diverging guarded (non-linear) family with a side
// atom: G_i(X,Y), S(Y) → ∃Z G_{i+1}(Y,Z); G_n feeds G_1; S holds the side
// tokens and every invented value gets one: G_i(X,Y) → S(Y) would
// terminate, so the ladder instead reuses the guard value. Diverging,
// guarded, not linear.
func GuardedLadder(n int) Labeled {
	var b strings.Builder
	for i := 1; i <= n; i++ {
		next := i%n + 1
		fmt.Fprintf(&b, "G%d(X,Y), S(X) -> G%d(Y,Z).\n", i, next)
		fmt.Fprintf(&b, "G%d(X,Y) -> S(Y).\n", i)
	}
	src := b.String()
	l := mustLabeled(fmt.Sprintf("guarded-ladder-%d", n), src, true, false, false, false)
	return l
}

// StickyJoin is the paper's Section 2 sticky example scaled: join rules
// whose marked variables occur once. Terminating (the T-atoms are
// consumed once; heads are satisfied after one round).
func StickyJoin(n int) Labeled {
	var b strings.Builder
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "T%d(X,Y,Z) -> S%d(Y,W).\n", i, i)
		fmt.Fprintf(&b, "R%d(X,Y), P%d(Y,Z) -> T%d(X,Y,W).\n", i, i, i)
	}
	return mustLabeled(fmt.Sprintf("sticky-join-%d", n), b.String(), false, true, false, true)
}

// StickyRelay is a diverging sticky family with an n-hop relay:
// B_1(X) → ∃Y R(X,Y); R(X,Y) → B_2(Y); B_i → B_{i+1}; B_n → B_1.
func StickyRelay(n int) Labeled {
	var b strings.Builder
	b.WriteString("B1(X) -> R(X,Y).\n")
	b.WriteString("R(X,Y) -> B2(Y).\n")
	for i := 2; i <= n; i++ {
		fmt.Fprintf(&b, "B%d(X) -> B%d(X).\n", i, i%n+1)
	}
	return mustLabeled(fmt.Sprintf("sticky-relay-%d", n), b.String(), true, true, true, false)
}

// Corpus returns the labeled corpus used by the coverage experiment (E9):
// hand-written programs (the paper's examples among them) plus the
// parametric families at small sizes.
func Corpus() []Labeled {
	out := []Labeled{
		mustLabeled("intro-example", `R(X,Y) -> R(X,Z).`, true, true, true, true),
		mustLabeled("example-3.2", `
			P(X,Y) -> R(X,Y).
			P(X,Y) -> S(X).
			R(X,Y) -> S(X).
			S(X) -> R(X,Y).`, true, true, true, true),
		mustLabeled("example-5.6", `
			S(X,Y) -> T(X).
			R(X,Y), T(Y) -> P(X,Y).
			P(X,Y) -> P(Y,Z).`, true, false, false, false),
		mustLabeled("ladder", `
			S(X) -> R(X,Y).
			R(X,Y) -> S(Y).`, true, true, true, false),
		mustLabeled("self-satisfied", `R(X,Y) -> R(Z,Y).`, true, true, true, true),
		mustLabeled("swap-intro", `
			T(X,Y) -> T(X,W).
			T(X,Y) -> T(Y,X).`, true, true, true, true),
		mustLabeled("transitive-closure", `E(X,Y), E(Y,Z) -> E(X,Z).`, false, false, false, true),
		mustLabeled("paper-sticky", `
			T(X,Y,Z) -> S(Y,W).
			R(X,Y), P(Y,Z) -> T(X,Y,W).`, false, true, false, true),
	}
	for _, n := range []int{2, 4} {
		out = append(out,
			DatalogChain(n),
			ExistentialChain(n),
			LinearCycle(n),
			SwapIntro(n),
			StickyJoin(n),
			StickyRelay(n),
			GuardedLadder(n),
		)
	}
	return out
}

// StarDatabase returns {R(hub, leaf_1), …, R(hub, leaf_n)}.
func StarDatabase(pred string, n int) *instance.Database {
	db := instance.NewDatabase()
	for i := 0; i < n; i++ {
		mustAdd(db, logic.MustAtom(pred, logic.Const("hub"), logic.Const(fmt.Sprintf("leaf%d", i))))
	}
	return db
}

// ChainDatabase returns {R(c_0,c_1), …, R(c_{n-1},c_n)}.
func ChainDatabase(pred string, n int) *instance.Database {
	db := instance.NewDatabase()
	for i := 0; i < n; i++ {
		mustAdd(db, logic.MustAtom(pred, logic.Const(fmt.Sprintf("c%d", i)), logic.Const(fmt.Sprintf("c%d", i+1))))
	}
	return db
}

// RandomDatabase draws nAtoms atoms over the schema with nConsts constants,
// deterministically from the seed.
func RandomDatabase(schema *logic.Schema, nAtoms, nConsts int, seed int64) *instance.Database {
	rng := rand.New(rand.NewSource(seed))
	preds := schema.Predicates()
	db := instance.NewDatabase()
	if len(preds) == 0 || nConsts <= 0 {
		return db
	}
	for i := 0; i < nAtoms; i++ {
		p := preds[rng.Intn(len(preds))]
		args := make([]logic.Term, p.Arity)
		for j := range args {
			args[j] = logic.Const(fmt.Sprintf("d%d", rng.Intn(nConsts)))
		}
		mustAdd(db, logic.NewAtom(p, args...))
	}
	return db
}

func mustAdd(db *instance.Database, a logic.Atom) {
	if err := db.Add(a); err != nil {
		panic(err)
	}
}

// ExchangeScenario is a data-exchange workload: weakly-acyclic
// source-to-target TGDs plus a generated source database.
type ExchangeScenario struct {
	Program *parser.Program
}

// Exchange builds a scenario with n source tuples: Emp(X,Y) maps to
// a target with an invented department, departments get references.
func Exchange(n int, seed int64) *ExchangeScenario {
	src := `
		emp_to_tgt: Emp(X,Y) -> TgtEmp(X,Y,D).
		dept_ref:   TgtEmp(X,Y,D) -> Dept(D).
		dept_head:  Dept(D) -> Head(D,H).
		head_person: Head(D,H) -> Person(H).
	`
	prog, err := parser.Parse(src)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		mustAdd(prog.Database, logic.MustAtom("Emp",
			logic.Const(fmt.Sprintf("e%d", i)),
			logic.Const(fmt.Sprintf("m%d", rng.Intn(n/2+1)))))
	}
	return &ExchangeScenario{Program: prog}
}

// Ontology builds a small guarded ontology (university flavoured) with n
// students and n/4 professors; every TGD is guarded and the set terminates.
func Ontology(n int, seed int64) *parser.Program {
	src := `
		prof_person:    Professor(X) -> Person(X).
		student_person: Student(X) -> Person(X).
		person_member:  Person(X) -> MemberOf(X,Y).
		member_org:     MemberOf(X,Y) -> Org(Y).
		teach_course:   Teaches(X,Y) -> Course(Y).
		teach_prof:     Teaches(X,Y) -> Professor(X).
		advise:         Advises(X,Y), Student(Y) -> Mentor(X).
		mentor_person:  Mentor(X) -> Person(X).
	`
	prog, err := parser.Parse(src)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	profs := n/4 + 1
	for i := 0; i < profs; i++ {
		mustAdd(prog.Database, logic.MustAtom("Professor", logic.Const(fmt.Sprintf("prof%d", i))))
	}
	for i := 0; i < n; i++ {
		mustAdd(prog.Database, logic.MustAtom("Student", logic.Const(fmt.Sprintf("stud%d", i))))
		p := fmt.Sprintf("prof%d", rng.Intn(profs))
		mustAdd(prog.Database, logic.MustAtom("Advises", logic.Const(p), logic.Const(fmt.Sprintf("stud%d", i))))
		if i%3 == 0 {
			mustAdd(prog.Database, logic.MustAtom("Teaches", logic.Const(p), logic.Const(fmt.Sprintf("course%d", i))))
		}
	}
	return prog
}

// KeyGraph builds the key-constrained EGD workload (BENCH_egd.json): a
// random graph of n nodes where every node receives an invented f-value
// (f_intro), the value propagates along edges (f_copy), and a key EGD makes
// F functional — so the chase keeps merging each node's accumulated values
// down to one, with equalities cascading transitively along edge chains. No
// ground F facts are seeded, so every unification is null-with-null and the
// chase never fails; the TGD part is weakly acyclic, so the set terminates
// under the EGD-sound acyclicity argument. Deterministic given (n, seed).
func KeyGraph(n int, seed int64) *parser.Program {
	src := `
		f_intro: Node(X) -> F(X,V).
		f_copy:  Edge(X,Y), F(X,V) -> F(Y,V).
		f_key:   F(X,U), F(X,V) -> U = V.
	`
	prog, err := parser.Parse(src)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	node := func(i int) logic.Term { return logic.Const(fmt.Sprintf("v%d", i)) }
	for i := 0; i < n; i++ {
		mustAdd(prog.Database, logic.MustAtom("Node", node(i)))
	}
	// ~1.5 random edges per node: enough convergence that most nodes see a
	// second value and the key fires, without densifying the join.
	for i := 0; i < n; i++ {
		mustAdd(prog.Database, logic.MustAtom("Edge", node(i), node(rng.Intn(n))))
		if i%2 == 0 {
			mustAdd(prog.Database, logic.MustAtom("Edge", node(rng.Intn(n)), node(i)))
		}
	}
	return prog
}

// StageGrid builds the ∀∃ search's scaling workload: n independent facts
// P(c_i), each advancing through two datalog stages (P → +Q → +R), so the
// reachable state space has exactly 3^n distinct instances and a single
// fixpoint — the full closure. A derivation search must sweep essentially
// the whole space before the fixpoint is expanded, making the family a pure
// states/sec measurement for the exists-search benchmarks
// (BENCH_parallel.json). Terminating; weakly acyclic.
func StageGrid(n int) *parser.Program {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "P(c%d).\n", i)
	}
	b.WriteString("s1: P(X) -> Q(X).\n")
	b.WriteString("s2: Q(X) -> R(X).\n")
	prog, err := parser.Parse(b.String())
	if err != nil {
		panic(err)
	}
	return prog
}
