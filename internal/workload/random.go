package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"airct/internal/parser"
	"airct/internal/tgds"
)

// RandomOptions tunes RandomTGDSet.
type RandomOptions struct {
	// Rules is the number of TGDs (0: 4).
	Rules int
	// Preds is the predicate pool size (0: 4).
	Preds int
	// MaxArity bounds predicate arity (0: 3).
	MaxArity int
	// MaxBody bounds body length (0: 2).
	MaxBody int
	// ExistentialBias is the per-head-position probability of an
	// existential variable, in percent (0: 30).
	ExistentialBias int
}

func (o RandomOptions) rules() int {
	if o.Rules <= 0 {
		return 4
	}
	return o.Rules
}
func (o RandomOptions) preds() int {
	if o.Preds <= 0 {
		return 4
	}
	return o.Preds
}
func (o RandomOptions) maxArity() int {
	if o.MaxArity <= 0 {
		return 3
	}
	return o.MaxArity
}
func (o RandomOptions) maxBody() int {
	if o.MaxBody <= 0 {
		return 2
	}
	return o.MaxBody
}
func (o RandomOptions) bias() int {
	if o.ExistentialBias <= 0 {
		return 30
	}
	return o.ExistentialBias
}

// RandomTGDSet draws a random single-head TGD set, deterministically from
// the seed. No class or termination guarantees: callers classify the
// result themselves (that is the point — it feeds the cross-validation
// property tests, which check the deciders against empirical chasing on
// whatever comes out).
func RandomTGDSet(seed int64, opts RandomOptions) *tgds.Set {
	rng := rand.New(rand.NewSource(seed))
	arities := make([]int, opts.preds())
	for i := range arities {
		arities[i] = 1 + rng.Intn(opts.maxArity())
	}
	varPool := []string{"X", "Y", "Z", "U", "V"}
	var b strings.Builder
	for r := 0; r < opts.rules(); r++ {
		nBody := 1 + rng.Intn(opts.maxBody())
		var bodyVars []string
		atom := func(vars []string) string {
			p := rng.Intn(len(arities))
			args := make([]string, arities[p])
			for i := range args {
				args[i] = vars[rng.Intn(len(vars))]
			}
			return fmt.Sprintf("P%d(%s)", p, strings.Join(args, ","))
		}
		// Body: draw variables from the pool.
		k := 1 + rng.Intn(len(varPool)-1)
		bodyVars = varPool[:k]
		var bodyAtoms []string
		for i := 0; i < nBody; i++ {
			bodyAtoms = append(bodyAtoms, atom(bodyVars))
		}
		// Head: frontier vars from the body, existentials with bias.
		p := rng.Intn(len(arities))
		args := make([]string, arities[p])
		for i := range args {
			if rng.Intn(100) < opts.bias() {
				args[i] = fmt.Sprintf("W%d", i)
			} else {
				args[i] = bodyVars[rng.Intn(len(bodyVars))]
			}
		}
		fmt.Fprintf(&b, "%s -> P%d(%s).\n", strings.Join(bodyAtoms, ", "), p, strings.Join(args, ","))
	}
	set, err := parser.ParseTGDs(b.String())
	if err != nil {
		panic(fmt.Sprintf("workload: random generator produced invalid program: %v\n%s", err, b.String()))
	}
	return set
}
