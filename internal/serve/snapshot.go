package serve

// The background snapshotter: the persistent-cache follow-up (ROADMAP item
// 5a) that turns the CLI's save-once-at-exit into a cadence. One shared
// implementation serves both front ends — termcheckd snapshots the daemon's
// cache on a ticker and once more on graceful shutdown, and `termcheck
// -cache-save-every` opts the CLI into the same loop so a crash mid-run
// loses at most one interval of warm work instead of the whole set. Every
// save goes through chase.SaveCacheFile's atomic temp-file rename, so a
// reader (or a killed writer) always sees a complete snapshot.

import (
	"os"
	"sync"
	"sync/atomic"
	"time"

	"airct/internal/chase"
)

// Snapshotter periodically saves one cache to one path. Create with
// NewSnapshotter; Close stops the loop and writes a final snapshot.
type Snapshotter struct {
	cache *chase.Cache
	path  string
	every time.Duration
	logf  func(format string, args ...any)

	stop      chan struct{}
	loopDone  chan struct{}
	closeOnce sync.Once

	// saveMu serialises saves: a ticker save racing the final Close save
	// would waste work (the rename itself is already atomic).
	saveMu sync.Mutex
	saves  atomic.Int64
	errs   atomic.Int64
	last   atomic.Int64 // unix milliseconds of the last successful save
}

// NewSnapshotter starts a snapshotter for the cache. every <= 0 disables
// the ticker — Close still writes the final snapshot, which is exactly the
// CLI's historic save-at-exit behaviour. logf (optional) receives save
// errors; ticker saves never abort the loop on error, since a transient
// full disk must not kill the cadence.
func NewSnapshotter(cache *chase.Cache, path string, every time.Duration, logf func(format string, args ...any)) *Snapshotter {
	s := &Snapshotter{
		cache: cache,
		path:  path,
		every: every,
		logf:  logf,
		stop:  make(chan struct{}),
	}
	if every > 0 {
		s.loopDone = make(chan struct{})
		go s.loop()
	}
	return s
}

func (s *Snapshotter) loop() {
	defer close(s.loopDone)
	t := time.NewTicker(s.every)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if err := s.Save(); err != nil && s.logf != nil {
				s.logf("cache snapshot to %s failed: %v", s.path, err)
			}
		}
	}
}

// Save writes one snapshot now.
func (s *Snapshotter) Save() error {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	if err := chase.SaveCacheFile(s.cache, s.path); err != nil {
		s.errs.Add(1)
		return err
	}
	s.saves.Add(1)
	s.last.Store(time.Now().UnixMilli())
	return nil
}

// Close stops the ticker loop and writes a final snapshot, returning the
// final save's error. Safe to call more than once; only the first call
// saves.
func (s *Snapshotter) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.stop)
		if s.loopDone != nil {
			<-s.loopDone
		}
		err = s.Save()
	})
	return err
}

// Stats snapshots the snapshotter's counters for /v1/stats.
func (s *Snapshotter) Stats() SnapshotStats {
	return SnapshotStats{
		Path:       s.path,
		EveryMS:    s.every.Milliseconds(),
		Saves:      s.saves.Load(),
		Errors:     s.errs.Load(),
		LastUnixMS: s.last.Load(),
	}
}

// OpenCacheFile loads the snapshot at path into a fresh cache: a missing
// file starts cold silently, a corrupt or version-mismatched one is
// reported through logf and ignored (the next save overwrites it) — the
// shared loader of termcheck and termcheckd, where persistence must never
// turn a servable request into an error.
func OpenCacheFile(path string, logf func(format string, args ...any)) *chase.Cache {
	if path == "" {
		return chase.NewCache()
	}
	loaded, rep, err := chase.LoadCacheFile(path)
	switch {
	case err == nil:
		if (rep.Skipped > 0 || rep.Truncated) && logf != nil {
			logf("cache file %s: restored %d entries, skipped %d corrupt, truncated=%t",
				path, rep.Restored, rep.Skipped, rep.Truncated)
		}
		return loaded
	case os.IsNotExist(err):
		// First run: start cold, save later.
	default:
		if logf != nil {
			logf("ignoring cache file %s: %v", path, err)
		}
	}
	return chase.NewCache()
}
