package serve

// Serving benchmarks (BENCH_serve.json): the repeated-mixed workload — the
// daemon's steady state of monitoring/CI/retry traffic re-asking the same
// questions — measured end to end over HTTP, cold (fresh cache, every
// request pays full price) against warm (ONE shared cross-run cache, every
// repeat replays). Each column also reports per-request latency percentiles
// (p50-ms/p99-ms) so the artefact records tails, not just throughput; the
// bursty columns drive the same pool in back-to-back bursts of identical
// requests, the arrival shape that stresses singleflight dedup. The
// recorded artefact claims warm sustains ≥5× the cold throughput; CI runs
// the benchmark at -benchtime 1x as a smoke so the harness itself cannot
// rot.
// Run with `go test -bench BenchmarkServeMixed -benchtime 20x ./internal/serve`.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"airct/internal/workload"
)

const (
	benchMixSize   = 8 // program size n for the mixed pool
	benchMixRounds = 4 // rounds per pass: 1 cold + 3 replays under a shared cache
	benchBurst     = 3 // identical back-to-back requests per program in the bursty shape
)

// servePass drives one full pass through the server over HTTP and appends
// each request's wall-clock latency to lat. Any non-200 is a harness bug.
func servePass(b *testing.B, url string, reqs []workload.ServeRequest, lat *[]time.Duration) int {
	b.Helper()
	for _, r := range reqs {
		var (
			path string
			body any
		)
		switch r.Endpoint {
		case "decide":
			path, body = "/v1/decide", DecideRequest{Program: r.Source}
		case "decide-portfolio":
			path, body = "/v1/decide", DecideRequest{Program: r.Source, Portfolio: true}
		case "exists":
			path, body = "/v1/exists", ExistsRequest{Program: r.Source}
		default:
			b.Fatalf("unknown endpoint %q", r.Endpoint)
		}
		raw, err := json.Marshal(body)
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		resp, err := http.Post(url+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		var sink map[string]any
		err = json.NewDecoder(resp.Body).Decode(&sink)
		resp.Body.Close()
		if lat != nil {
			*lat = append(*lat, time.Since(start))
		}
		if err != nil || resp.StatusCode != http.StatusOK {
			b.Fatalf("%s: status %d err %v (%v)", path, resp.StatusCode, err, sink)
		}
	}
	return len(reqs)
}

// reportPercentiles attaches p50-ms/p99-ms custom metrics from the
// accumulated per-request latencies (nearest-rank percentiles).
func reportPercentiles(b *testing.B, lat []time.Duration) {
	if len(lat) == 0 {
		return
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pick := func(p float64) time.Duration {
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	b.ReportMetric(float64(pick(0.50).Microseconds())/1e3, "p50-ms")
	b.ReportMetric(float64(pick(0.99).Microseconds())/1e3, "p99-ms")
}

// benchColdWarm runs the cold column (every pass against a FRESH daemon —
// the no-shared-cache world) and the warm column (one daemon across all
// passes — after the first, every request replays from the shared cache)
// for one request shape. ns/op is a full pass either way, so warm/cold
// ns/op is the sustained throughput ratio BENCH_serve.json records; the
// percentile metrics are per-request within the timed passes.
func benchColdWarm(b *testing.B, reqs []workload.ServeRequest) {
	b.Run("cold", func(b *testing.B) {
		var lat []time.Duration
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			srv := New(Config{})
			ts := httptest.NewServer(srv.Handler())
			b.StartTimer()
			servePass(b, ts.URL, reqs, &lat)
			b.StopTimer()
			ts.Close()
			srv.Close()
			b.StartTimer()
		}
		reportPercentiles(b, lat)
	})
	b.Run("warm", func(b *testing.B) {
		srv := New(Config{})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Close()
		servePass(b, ts.URL, reqs, nil) // pre-warm the shared cache
		var lat []time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			servePass(b, ts.URL, reqs, &lat)
		}
		b.StopTimer()
		reportPercentiles(b, lat)
	})
}

func BenchmarkServeMixed(b *testing.B) {
	benchColdWarm(b, workload.RepeatedMixedRequests(benchMixSize, benchMixRounds))
	b.Run("bursty", func(b *testing.B) {
		benchColdWarm(b, workload.BurstyMixedRequests(benchMixSize, benchMixRounds, benchBurst))
	})
}
