package serve

// Serving benchmarks (BENCH_serve.json): the repeated-mixed workload — the
// daemon's steady state of monitoring/CI/retry traffic re-asking the same
// questions — measured end to end over HTTP, cold (fresh cache, every
// request pays full price) against warm (ONE shared cross-run cache, every
// repeat replays). The recorded artefact claims warm sustains ≥5× the
// cold throughput; CI runs the benchmark at -benchtime 1x as a smoke so
// the harness itself cannot rot.
// Run with `go test -bench BenchmarkServeMixed -benchtime 20x ./internal/serve`.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"airct/internal/workload"
)

const (
	benchMixSize   = 8 // program size n for the mixed pool
	benchMixRounds = 4 // rounds per pass: 1 cold + 3 replays under a shared cache
)

// servePass drives one full repeated-mixed pass through the server over
// HTTP and returns the request count. Any non-200 is a harness bug.
func servePass(b *testing.B, url string, reqs []workload.ServeRequest) int {
	b.Helper()
	for _, r := range reqs {
		var (
			path string
			body any
		)
		switch r.Endpoint {
		case "decide":
			path, body = "/v1/decide", DecideRequest{Program: r.Source}
		case "decide-portfolio":
			path, body = "/v1/decide", DecideRequest{Program: r.Source, Portfolio: true}
		case "exists":
			path, body = "/v1/exists", ExistsRequest{Program: r.Source}
		default:
			b.Fatalf("unknown endpoint %q", r.Endpoint)
		}
		raw, err := json.Marshal(body)
		if err != nil {
			b.Fatal(err)
		}
		resp, err := http.Post(url+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		var sink map[string]any
		err = json.NewDecoder(resp.Body).Decode(&sink)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			b.Fatalf("%s: status %d err %v (%v)", path, resp.StatusCode, err, sink)
		}
	}
	return len(reqs)
}

// BenchmarkServeMixed/cold: every pass runs against a FRESH daemon — the
// no-shared-cache world, each round re-analysing from scratch.
// BenchmarkServeMixed/warm: one daemon across all passes — after the first
// pass every request replays from the shared cache. ns/op is a full
// benchMixRounds-round pass either way, so warm/cold ns/op is the
// sustained throughput ratio BENCH_serve.json records.
func BenchmarkServeMixed(b *testing.B) {
	reqs := workload.RepeatedMixedRequests(benchMixSize, benchMixRounds)
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			srv := New(Config{})
			ts := httptest.NewServer(srv.Handler())
			b.StartTimer()
			servePass(b, ts.URL, reqs)
			b.StopTimer()
			ts.Close()
			srv.Close()
			b.StartTimer()
		}
	})
	b.Run("warm", func(b *testing.B) {
		srv := New(Config{})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Close()
		servePass(b, ts.URL, reqs) // pre-warm the shared cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			servePass(b, ts.URL, reqs)
		}
	})
}
