package serve

// The singleflight table: concurrent identical requests — same TGD-set
// fingerprint, same instance fingerprint, same question and budgets — share
// ONE underlying analysis instead of racing N copies of it. The table is
// the serving-side complement of the cross-run cache: the cache dedups
// across time (a finished answer is replayed), the flight table dedups
// across concurrency (an unfinished answer is joined). A thundering herd of
// k identical decides therefore costs one decide cold and one cache probe
// each warm.
//
// Lifecycle: the first caller for a key becomes the LEADER — it claims an
// admission slot (followers never consume one), runs the work on a context
// detached from its own request, and publishes the result to everyone who
// joined. Followers wait on the flight's done channel with their own
// request contexts, so a follower that disconnects stops waiting without
// disturbing the flight. The flight's context is refcounted: when the last
// interested caller has gone, the flight is cancelled — the engine/search/
// Decide context plumbing (RunChaseContext, DecideContext,
// portfolio.Analyze) then stops the underlying work promptly, and nothing
// is stored in the cache for it. A finished flight is removed from the
// table; later identical requests are served by the cache, not the table.

import (
	"context"
	"sync"
	"time"

	"airct/internal/logic"
)

// flightKey identifies one unit of deduplicatable work. Salt folds the
// question kind and every verdict-relevant budget (the same rule as the
// cross-run cache keys); worker counts and timeouts are deliberately
// excluded — verdicts are worker-invariant, and a follower with a shorter
// timeout than the leader's simply stops waiting early.
type flightKey struct {
	set  logic.Fingerprint
	inst logic.Fingerprint
	salt uint64
}

// flight is one in-progress computation.
type flight struct {
	done   chan struct{}
	cancel context.CancelFunc
	val    any
	err    error
	// waiters counts callers still interested in the result; guarded by
	// the owning table's mutex. The flight is cancelled when it drops to
	// zero before completion.
	waiters int
}

type flightTable struct {
	mu sync.Mutex
	m  map[flightKey]*flight
}

// doFlight deduplicates fn across concurrent callers of the same key. It
// returns fn's result, whether this caller joined another caller's flight
// (shared), and an error: errShed when the caller would have led but no
// admission slot was free, ctx.Err() when the caller stopped waiting, or
// fn's own error. fn runs on a context derived from the server's base
// context (NOT the caller's), bounded by timeout when timeout > 0.
func (s *Server) doFlight(ctx context.Context, key flightKey, timeout time.Duration, fn func(ctx context.Context) (any, error)) (any, bool, error) {
	t := &s.flights
	t.mu.Lock()
	if f, ok := t.m[key]; ok {
		f.waiters++
		t.mu.Unlock()
		s.metrics.flightsDeduped.Add(1)
		return s.waitFlight(ctx, f, true)
	}
	// Leader path: claim an admission slot without queuing — a full pool
	// sheds the request instead of building an unbounded backlog.
	select {
	case s.gate <- struct{}{}:
	default:
		t.mu.Unlock()
		s.metrics.requestsShed.Add(1)
		return nil, false, errShed
	}
	fctx, cancel := context.WithCancel(s.baseCtx)
	runCtx, timeoutCancel := fctx, context.CancelFunc(func() {})
	if timeout > 0 {
		runCtx, timeoutCancel = context.WithTimeout(fctx, timeout)
	}
	f := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
	if t.m == nil {
		t.m = make(map[flightKey]*flight)
	}
	t.m[key] = f
	t.mu.Unlock()
	s.metrics.flightsStarted.Add(1)

	go func() {
		defer func() { <-s.gate }()
		val, err := fn(runCtx)
		if runCtx.Err() != nil {
			// The underlying work was stopped by cancellation (every
			// interested client left, the flight timed out, or the server
			// is shutting down) rather than running to completion.
			s.metrics.flightsCancelled.Add(1)
		}
		timeoutCancel()
		t.mu.Lock()
		delete(t.m, key)
		f.val, f.err = val, err
		close(f.done)
		t.mu.Unlock()
	}()
	return s.waitFlight(ctx, f, false)
}

// waitFlight blocks until the flight publishes or the caller's own context
// fires. A departing caller decrements the refcount and cancels the flight
// when it was the last one interested.
func (s *Server) waitFlight(ctx context.Context, f *flight, shared bool) (any, bool, error) {
	select {
	case <-f.done:
		return f.val, shared, f.err
	case <-ctx.Done():
		s.flights.mu.Lock()
		f.waiters--
		if f.waiters == 0 {
			select {
			case <-f.done:
			default:
				f.cancel()
			}
		}
		s.flights.mu.Unlock()
		return nil, shared, ctx.Err()
	}
}
