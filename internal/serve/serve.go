// Package serve is the serving front end: a long-lived HTTP/JSON analysis
// server wrapping the library's decision procedures behind a request API,
// so the cross-run chase cache finally compounds across requests instead of
// dying with each termcheck process.
//
// Endpoints (all JSON):
//
//	POST /v1/decide  — CT^res_∀∀ via core.AnalyzeContext, or the staged
//	                   decider portfolio with portfolio=true
//	POST /v1/exists  — CT^res_∀∃ on the program's database via
//	                   chase.SearchTerminatingDerivationContext
//	GET  /v1/stats   — cache / trigger-index / portfolio / serving counters
//	GET  /healthz    — liveness
//
// Three serving mechanisms wrap the procedures:
//
//   - ONE shared chase.Cache. Every request reads and writes the same
//     cache, loaded from a snapshot at startup and snapshotted back on a
//     background cadence and at graceful shutdown (Snapshotter), so the
//     141×/388× warm wins measured per-process become the steady state.
//   - Singleflight dedup (singleflight.go). Identical concurrent requests
//     — equal TGD-set fingerprint, instance fingerprint, question and
//     budgets — share one underlying analysis; a thundering herd runs one
//     decide. Followers are free: only flight leaders occupy the pool.
//   - Budgeted admission. A bounded slot pool gates flight leaders; when
//     every slot is busy a new leader is shed with 429 immediately instead
//     of queuing unboundedly. Per-request deadlines map onto
//     context.WithTimeout over the engine's existing context plumbing, and
//     a flight whose every client disconnected is cancelled promptly.
//
// Verdicts served over HTTP are pinned bit-identical to in-process
// analysis by the e2e conformance suite (serve_test.go and the root
// conformance matrix's served column).
package serve

import (
	"context"
	"errors"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"airct/internal/chase"
	"airct/internal/core"
	"airct/internal/guarded"
	"airct/internal/logic"
	"airct/internal/portfolio"
	"airct/internal/sticky"
)

// errShed marks a request rejected by the admission gate.
var errShed = errors.New("serve: admission pool full")

// Defaults mirror the termcheck CLI so a served verdict is comparable to a
// CLI verdict out of the box.
const (
	defaultGuardedBudget = 2000
	defaultStickyStates  = 200_000
	defaultExistsStates  = 10_000
	defaultExistsAtoms   = 200
)

// Config configures a Server. The zero value works: fresh default cache,
// 2×GOMAXPROCS admission slots, CLI-default budgets, no timeouts, no
// snapshotter.
type Config struct {
	// Cache is the shared cross-run cache (nil: a fresh default cache).
	Cache *chase.Cache
	// MaxInflight bounds concurrently executing flight leaders; further
	// leaders are shed with 429 (0: 2×GOMAXPROCS, minimum 2). Followers
	// joining an existing flight never consume a slot.
	MaxInflight int
	// DefaultTimeout applies to requests that carry no timeout-ms (0:
	// unbounded).
	DefaultTimeout time.Duration
	// MaxTimeout caps requested timeouts (0: uncapped).
	MaxTimeout time.Duration
	// Workers is the default worker count for requests that omit workers:
	// the ∀∃ search shards, the portfolio Tier 2 pool and the guarded
	// seed pool (0: 1, sequential).
	Workers int
	// Adaptive, when true, gives portfolio requests a shared online cost
	// model (portfolio.CostModel): the cheap stage prefix is reordered per
	// workload class and the Tier 1 probe budget adapts, with learned state
	// synchronised through the shared cache (and hence its snapshots).
	// Verdicts are model-invariant; only latency changes. Requests that set
	// probe-steps explicitly keep their requested budget.
	Adaptive bool
	// Snapshot, when set, is reported by /v1/stats. The server does not
	// drive it — the owner (the daemon) ticks and closes it.
	Snapshot *Snapshotter
	// Logf receives serving-layer diagnostics (nil: silent).
	Logf func(format string, args ...any)
}

type metrics struct {
	requestsDecide   atomic.Int64
	requestsExists   atomic.Int64
	requestsStats    atomic.Int64
	requestsHealth   atomic.Int64
	flightsStarted   atomic.Int64
	flightsDeduped   atomic.Int64
	flightsCancelled atomic.Int64
	requestsShed     atomic.Int64
	probeRejects     atomic.Int64

	mu             sync.Mutex
	existsAgg      chase.SearchStats
	portfolioTally map[string]int64
}

// Server hosts the analysis API. Create with New; Server methods are safe
// for concurrent use.
type Server struct {
	cfg     Config
	cache   *chase.Cache
	model   *portfolio.CostModel
	gate    chan struct{}
	flights flightTable
	metrics metrics
	start   time.Time
	mux     *http.ServeMux

	baseCtx context.Context
	stopAll context.CancelFunc
}

// New builds a Server from the config.
func New(cfg Config) *Server {
	if cfg.Cache == nil {
		cfg.Cache = chase.NewCache()
	}
	inflight := cfg.MaxInflight
	if inflight <= 0 {
		inflight = 2 * runtime.GOMAXPROCS(0)
		if inflight < 2 {
			inflight = 2
		}
	}
	s := &Server{
		cfg:   cfg,
		cache: cfg.Cache,
		gate:  make(chan struct{}, inflight),
		start: time.Now(),
		mux:   http.NewServeMux(),
	}
	s.baseCtx, s.stopAll = context.WithCancel(context.Background())
	if cfg.Adaptive {
		s.model = portfolio.NewCostModel()
	}
	s.metrics.portfolioTally = make(map[string]int64)
	s.mux.HandleFunc("/v1/decide", s.handleDecide)
	s.mux.HandleFunc("/v1/exists", s.handleExists)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache returns the shared cross-run cache.
func (s *Server) Cache() *chase.Cache { return s.cache }

// Close cancels every in-flight analysis (shutdown). In-flight HTTP
// connections are the http.Server's business; Close only stops the
// detached flight work.
func (s *Server) Close() { s.stopAll() }

// timeoutFor resolves a request's wall-clock budget against the server's
// default and cap.
func (s *Server) timeoutFor(requestedMS int64) time.Duration {
	d := time.Duration(requestedMS) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (d <= 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	return d
}

func (s *Server) workersFor(requested int) int {
	if requested > 0 {
		return requested
	}
	if s.cfg.Workers > 0 {
		return s.cfg.Workers
	}
	return 1
}

func orDefault(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

// finish maps a flight's outcome onto the response writer: sheds, client
// departures and analysis errors end here; a nil error hands the value
// back for the endpoint to render.
func (s *Server) finish(w http.ResponseWriter, r *http.Request, val any, err error) (any, bool) {
	switch {
	case err == nil:
		return val, true
	case errors.Is(err, errShed):
		writeError(w, http.StatusTooManyRequests, "server is at capacity; retry later")
	case errors.Is(r.Context().Err(), context.Canceled), errors.Is(r.Context().Err(), context.DeadlineExceeded):
		// The client is gone; nothing to write.
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "request timeout exceeded")
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
	return nil, false
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsDecide.Add(1)
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req DecideRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	prog, err := parseProgram(req.Program)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	guardedBudget := orDefault(req.GuardedBudget, defaultGuardedBudget)
	stickyStates := orDefault(req.StickyStates, defaultStickyStates)
	probeSteps := orDefault(req.ProbeSteps, guarded.DefaultProbeSteps)
	if s.model != nil {
		// Adaptive: a zero request lets the cost model pick the probe
		// budget per workload class; an explicit request is respected.
		probeSteps = req.ProbeSteps
	}
	workers := s.workersFor(req.Workers)
	key := flightKey{
		set:  prog.TGDs.Fingerprint(),
		inst: logic.FingerprintAtoms(prog.Database.Atoms()),
		salt: decideSalt(req.Portfolio, guardedBudget, stickyStates, probeSteps),
	}
	start := time.Now()
	val, shared, err := s.doFlight(r.Context(), key, s.timeoutFor(req.TimeoutMS), func(ctx context.Context) (any, error) {
		if req.Portfolio {
			opts := portfolio.Options{
				Guarded:    guarded.DecideOptions{MaxSteps: guardedBudget, Workers: workers},
				Sticky:     sticky.DecideOptions{MaxStates: stickyStates},
				ProbeSteps: probeSteps,
				Workers:    workers,
				Cache:      s.cache,
				Model:      s.model,
			}
			if prog.Database.Len() > 0 {
				opts.Database = prog.Database
				opts.Exists = chase.SearchOptions{MaxStates: defaultExistsStates, MaxAtoms: defaultExistsAtoms}
			}
			res, err := portfolio.Analyze(ctx, prog.TGDs, opts)
			if err != nil {
				return nil, err
			}
			s.tallyPortfolio(res)
			return portfolioResponseOf(res), nil
		}
		rep, err := core.AnalyzeContext(ctx, prog.TGDs, core.Options{
			GuardedOptions: guarded.DecideOptions{MaxSteps: guardedBudget, Workers: workers, Cache: s.cache},
			StickyOptions:  sticky.DecideOptions{MaxStates: stickyStates, Cache: s.cache},
		})
		if err != nil {
			return nil, err
		}
		return decideResponseOf(rep), nil
	})
	val, ok := s.finish(w, r, val, err)
	if !ok {
		return
	}
	resp := val.(DecideResponse)
	resp.Shared = shared
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1e3
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExists(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsExists.Add(1)
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req ExistsRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	prog, err := parseProgram(req.Program)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if prog.Database.Len() == 0 {
		writeError(w, http.StatusBadRequest, "exists needs facts in the program (the question is per-database)")
		return
	}
	if prog.TGDs.HasEGDs() {
		writeError(w, http.StatusBadRequest, "exists is TGD-only: the derivation search does not model equality steps")
		return
	}
	strat, err := chase.ParseSearchStrategy(req.Strategy)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	maxStates := orDefault(req.MaxStates, defaultExistsStates)
	maxAtoms := orDefault(req.MaxAtoms, defaultExistsAtoms)
	workers := s.workersFor(req.Workers)
	key := flightKey{
		set:  prog.TGDs.Fingerprint(),
		inst: logic.FingerprintAtoms(prog.Database.Atoms()),
		salt: existsSalt(strat, maxStates, maxAtoms),
	}
	start := time.Now()
	val, shared, err := s.doFlight(r.Context(), key, s.timeoutFor(req.TimeoutMS), func(ctx context.Context) (any, error) {
		res := chase.SearchTerminatingDerivationContext(ctx, prog.Database, prog.TGDs, chase.SearchOptions{
			MaxStates: maxStates,
			MaxAtoms:  maxAtoms,
			Strategy:  strat,
			Workers:   workers,
			Cache:     s.cache,
		})
		s.tallyExists(res)
		return existsResponseOf(res), nil
	})
	val, ok := s.finish(w, r, val, err)
	if !ok {
		return
	}
	resp := val.(ExistsResponse)
	resp.Shared = shared
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1e3
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsStats.Add(1)
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsHealth.Add(1)
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Stats assembles the /v1/stats body.
func (s *Server) Stats() StatsResponse {
	out := StatsResponse{
		UptimeMS: time.Since(s.start).Milliseconds(),
		Requests: RequestStats{
			Decide: s.metrics.requestsDecide.Load(),
			Exists: s.metrics.requestsExists.Load(),
			Stats:  s.metrics.requestsStats.Load(),
			Health: s.metrics.requestsHealth.Load(),
		},
		Flights: FlightStats{
			Started:   s.metrics.flightsStarted.Load(),
			Deduped:   s.metrics.flightsDeduped.Load(),
			Shed:      s.metrics.requestsShed.Load(),
			Cancelled: s.metrics.flightsCancelled.Load(),
		},
		Cache:    s.cache.Stats(),
		Activity: s.cache.ActivityTotals(),
	}
	out.Adaptive.Enabled = s.model != nil
	out.Adaptive.ProbeRejects = s.metrics.probeRejects.Load()
	if s.model != nil {
		out.Adaptive.Classes = s.model.States()
	}
	s.metrics.mu.Lock()
	out.Exists = s.metrics.existsAgg
	out.Portfolio = make(map[string]int64, len(s.metrics.portfolioTally))
	for k, v := range s.metrics.portfolioTally {
		out.Portfolio[k] = v
	}
	s.metrics.mu.Unlock()
	if s.cfg.Snapshot != nil {
		out.Snapshot = s.cfg.Snapshot.Stats()
	}
	return out
}

// tallyExists aggregates one search's work counters — the serving-level
// `trigger-index:` line.
func (s *Server) tallyExists(res *chase.ExistsResult) {
	s.metrics.mu.Lock()
	a := &s.metrics.existsAgg
	a.StatesExpanded += res.Stats.StatesExpanded
	a.MemoHits += res.Stats.MemoHits
	if res.Stats.PeakFrontier > a.PeakFrontier {
		a.PeakFrontier = res.Stats.PeakFrontier
	}
	a.IndexRepairs += res.Stats.IndexRepairs
	a.IndexRebuilds += res.Stats.IndexRebuilds
	a.ActivityRechecks += res.Stats.ActivityRechecks
	s.metrics.mu.Unlock()
}

// tallyPortfolio counts which stage decided — the serving-level digest of
// the `portfolio-stage:` lines. A probe that decided Diverges is the
// rejecting fast path; it is tallied separately from an accepting probe so
// /v1/stats can report reject-path hits.
func (s *Server) tallyPortfolio(res *portfolio.Result) {
	name := res.DecidedBy
	if name == "" {
		name = "undecided"
	} else if name == "probe" && res.Conclusion == core.Diverges {
		name = "probe-reject"
		s.metrics.probeRejects.Add(1)
	}
	s.metrics.mu.Lock()
	s.metrics.portfolioTally[name]++
	s.metrics.mu.Unlock()
}
