package serve

// The serving concurrency contracts, written to run under -race:
//
//   - singleflight: a burst of identical requests runs ONE underlying
//     analysis; every other caller joins it and is marked shared
//   - admission: flight followers never consume pool slots, so verdicts
//     are invariant across admission-pool widths, and a saturated pool
//     sheds NEW work with 429 instead of queuing
//   - cancellation: when every client of a flight disconnects, the
//     underlying analysis stops promptly

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"airct/internal/workload"
)

// slowExistsBody builds an exists request over StageGrid(n) — a 3^n-state
// sweep (~250ms at n=10 sequentially, seconds at n=12) whose search checks
// its context every expansion, so flights overlap reliably and cancel
// promptly.
func slowExistsBody(n int) []byte {
	src := programText(workload.StageGrid(n))
	raw, err := json.Marshal(ExistsRequest{Program: src, MaxStates: 1_000_000, MaxAtoms: 100})
	if err != nil {
		panic(err)
	}
	return raw
}

// TestSingleflightBurst is the issue's dedup proof: N identical concurrent
// exists requests cost exactly one underlying search — flights.started is
// 1, the other N−1 are deduped and marked shared — and all N carry the
// same verdict.
func TestSingleflightBurst(t *testing.T) {
	ts := newTestServer(t, Config{})
	body := slowExistsBody(10)
	const n = 8

	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		mu    sync.Mutex
		resps []ExistsResponse
	)
	start.Add(1)
	for i := 0; i < n; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait()
			resp, err := http.Post(ts.url("/v1/exists"), "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("post: %v", err)
				return
			}
			defer resp.Body.Close()
			var ex ExistsResponse
			if err := json.NewDecoder(resp.Body).Decode(&ex); err != nil || resp.StatusCode != http.StatusOK {
				t.Errorf("status %d decode %v", resp.StatusCode, err)
				return
			}
			mu.Lock()
			resps = append(resps, ex)
			mu.Unlock()
		}()
	}
	start.Done()
	done.Wait()

	fl := ts.srv.Stats().Flights
	if fl.Started != 1 {
		t.Errorf("flights started = %d, want 1 (the whole burst shares one search)", fl.Started)
	}
	if fl.Deduped != n-1 {
		t.Errorf("flights deduped = %d, want %d", fl.Deduped, n-1)
	}
	shared := 0
	for _, ex := range resps {
		if ex.Shared {
			shared++
		}
	}
	if len(resps) != n || shared != n-1 {
		t.Errorf("responses = %d with %d shared, want %d with %d", len(resps), shared, n, n-1)
	}
	for _, ex := range resps {
		if ex.Verdict != resps[0].Verdict || ex.States != resps[0].States {
			t.Errorf("burst verdicts drifted: %+v vs %+v", ex, resps[0])
		}
	}
}

// TestPoolWidthInvariance pins that followers never consume admission
// slots: the same identical burst succeeds completely at MaxInflight 1 and
// 8 with identical verdicts and exactly one underlying flight each — the
// pool width changes scheduling, never answers.
func TestPoolWidthInvariance(t *testing.T) {
	verdicts := make(map[int]string)
	for _, width := range []int{1, 8} {
		ts := newTestServer(t, Config{MaxInflight: width})
		body := slowExistsBody(9)
		const n = 6
		var start, done sync.WaitGroup
		errs := make(chan string, n)
		start.Add(1)
		for i := 0; i < n; i++ {
			done.Add(1)
			go func() {
				defer done.Done()
				start.Wait()
				resp, err := http.Post(ts.url("/v1/exists"), "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err.Error()
					return
				}
				defer resp.Body.Close()
				var ex ExistsResponse
				if err := json.NewDecoder(resp.Body).Decode(&ex); err != nil || resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("status %d err %v", resp.StatusCode, err)
					return
				}
				errs <- "verdict:" + ex.Verdict
			}()
		}
		start.Done()
		done.Wait()
		close(errs)
		for msg := range errs {
			if len(msg) < 8 || msg[:8] != "verdict:" {
				t.Fatalf("width=%d: request failed: %s", width, msg)
			}
			if v, ok := verdicts[width]; ok && v != msg {
				t.Errorf("width=%d: verdicts drifted within burst: %s vs %s", width, msg, v)
			}
			verdicts[width] = msg
		}
		if fl := ts.srv.Stats().Flights; fl.Started != 1 || fl.Shed != 0 {
			t.Errorf("width=%d: flights = %+v, want one started and none shed", width, fl)
		}
	}
	if verdicts[1] != verdicts[8] {
		t.Errorf("verdict varies with pool width: %q vs %q", verdicts[1], verdicts[8])
	}
}

// TestAdmissionShed pins the load-shedding contract: with one admission
// slot held by a slow flight, a DIFFERENT request is shed immediately with
// 429 — never queued behind the slow one.
func TestAdmissionShed(t *testing.T) {
	ts := newTestServer(t, Config{MaxInflight: 1})

	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		resp, err := http.Post(ts.url("/v1/exists"), "application/json", bytes.NewReader(slowExistsBody(11)))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	// Wait until the slow flight holds the slot.
	deadline := time.Now().Add(5 * time.Second)
	for ts.srv.Stats().Flights.Started == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow flight never started")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	status, body := rawPost(t, ts.url("/v1/decide"), `{"program":"r: P(X) -> Q(X)."}`)
	elapsed := time.Since(start)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", status, body)
	}
	// Shedding must be immediate — well under the slow flight's runtime.
	if elapsed > 2*time.Second {
		t.Errorf("shed took %v; must not queue behind the in-flight analysis", elapsed)
	}
	var e errorResponse
	if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
		t.Errorf("shed body not JSON {error}: %s", body)
	}
	if got := ts.srv.Stats().Flights.Shed; got != 1 {
		t.Errorf("flights shed = %d, want 1", got)
	}
	<-slowDone
}

// TestClientDisconnectCancelsFlight pins prompt cancellation: a flight
// whose only client disconnects is stopped well before it would finish on
// its own (StageGrid(12) runs for seconds; the cancel lands at ~100ms).
func TestClientDisconnectCancelsFlight(t *testing.T) {
	ts := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.url("/v1/exists"), bytes.NewReader(slowExistsBody(12)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")

	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	deadline := time.Now().Add(5 * time.Second)
	for ts.srv.Stats().Flights.Started == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flight never started")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("request completed despite cancellation")
	}

	// The flight must notice within 2s — far sooner than the search's
	// natural multi-second runtime.
	deadline = time.Now().Add(2 * time.Second)
	for ts.srv.Stats().Flights.Cancelled == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("flight not cancelled within 2s of the last client leaving: %+v", ts.srv.Stats().Flights)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerCloseCancelsFlights pins shutdown: Close cancels detached
// in-flight work even while a client is still waiting on it.
func TestServerCloseCancelsFlights(t *testing.T) {
	ts := newTestServer(t, Config{})
	errc := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.url("/v1/exists"), "application/json", bytes.NewReader(slowExistsBody(12)))
		if err != nil {
			errc <- -1
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		errc <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for ts.srv.Stats().Flights.Started == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flight never started")
		}
		time.Sleep(time.Millisecond)
	}
	ts.srv.Close()
	select {
	case status := <-errc:
		// The search absorbs cancellation as data: the waiting client gets a
		// 200 with verdict "cancelled" (no semantic claim) rather than an
		// abrupt close.
		if status != http.StatusOK {
			t.Errorf("status after shutdown = %d, want 200 with a cancelled verdict", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client still waiting 5s after Close; shutdown did not cancel the flight")
	}
}
