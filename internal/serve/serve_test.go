package serve

// The end-to-end serving suite: every conformance corpus program is driven
// through the HTTP API — decode, flight, analyse, encode — and the served
// verdicts are pinned bit-identical to in-process analysis across three
// cache regimes: a cold daemon, a warm daemon (second identical request),
// and a daemon restarted from a cache snapshot. The error surface (405,
// 400, 429, 504) and the stats endpoint are pinned here too; the
// concurrency contracts (singleflight, admission, disconnect) live in
// concurrency_test.go.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"airct/internal/chase"
	"airct/internal/core"
	"airct/internal/guarded"
	"airct/internal/parser"
	"airct/internal/portfolio"
	"airct/internal/sticky"
	"airct/internal/workload"
)

// The conformance harness budgets (see ../../conformance_test.go): fixed so
// every corpus verdict is deterministic.
const (
	confDecideSteps  = 500
	confExistsStates = 5000
	confExistsAtoms  = 80
)

// testServer couples a Server with an httptest front end.
type testServer struct {
	srv *Server
	ts  *httptest.Server
}

func newTestServer(t *testing.T, cfg Config) *testServer {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return &testServer{srv: srv, ts: ts}
}

func (s *testServer) url(path string) string { return s.ts.URL + path }

// postJSON posts body and decodes the response into out, demanding the
// status.
func postJSON(t *testing.T, url string, body any, wantStatus int, out any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status = %d, want %d (body %s)", url, resp.StatusCode, wantStatus, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("POST %s: bad response JSON: %v (body %s)", url, err, data)
		}
	}
}

func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status = %d, want %d (body %s)", url, resp.StatusCode, wantStatus, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("GET %s: bad response JSON: %v", url, err)
		}
	}
}

// corpusFiles loads the shared conformance corpus.
func corpusFiles(t *testing.T) map[string]string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "conformance", "*.chase"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no conformance corpus found: %v", err)
	}
	out := make(map[string]string, len(files))
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		out[strings.TrimSuffix(filepath.Base(f), ".chase")] = string(raw)
	}
	return out
}

// reference holds the in-process answers for one corpus program at the
// serving budgets — the bit-identity baseline every served regime must hit.
type reference struct {
	decide    string // plain ∀∀ rendering
	portfolio string // portfolio ∀∀ rendering
	exists    string // ∀∃ rendering; "" when the program has no facts
}

// renderDecide is the identity witness for POST /v1/decide without
// portfolio: the verdict and the full reason trail. Shared/elapsed/cache
// fields are serving metadata, not analysis output, and are excluded.
func renderDecide(verdict string, reasons []string) string {
	return verdict + "|" + strings.Join(reasons, ";")
}

// renderPortfolio is the identity witness for the portfolio route: the
// conclusion and the deciding stage (the same pair the root conformance
// harness pins across cache regimes; per-stage timings vary by nature).
func renderPortfolio(verdict, decidedBy string) string {
	return verdict + "|" + decidedBy
}

// renderExists is the identity witness for POST /v1/exists: verdict, state
// count, the full work-counter struct and the witness derivation.
func renderExists(verdict string, states int, stats chase.SearchStats, derivation []string) string {
	return fmt.Sprintf("%s|%d|%+v|%s", verdict, states, stats, strings.Join(derivation, ";"))
}

// referenceFor computes the in-process baseline with the exact options the
// handlers use at these request budgets (cache off — the root conformance
// suite already pins cache off ≡ cold ≡ warm ≡ snapshot in-process).
func referenceFor(t *testing.T, src string) reference {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var ref reference
	rep, err := core.AnalyzeContext(context.Background(), prog.TGDs, core.Options{
		GuardedOptions: guarded.DecideOptions{MaxSteps: confDecideSteps, Workers: 1},
		StickyOptions:  sticky.DecideOptions{MaxStates: defaultStickyStates},
	})
	if err != nil {
		t.Fatalf("core.AnalyzeContext: %v", err)
	}
	ref.decide = renderDecide(rep.Conclusion.String(), rep.Reasons)

	popts := portfolio.Options{
		Guarded:    guarded.DecideOptions{MaxSteps: confDecideSteps, Workers: 1},
		Sticky:     sticky.DecideOptions{MaxStates: defaultStickyStates},
		ProbeSteps: guarded.DefaultProbeSteps,
		Workers:    1,
	}
	if prog.Database.Len() > 0 {
		popts.Database = prog.Database
		popts.Exists = chase.SearchOptions{MaxStates: defaultExistsStates, MaxAtoms: defaultExistsAtoms}
	}
	pres, err := portfolio.Analyze(context.Background(), prog.TGDs, popts)
	if err != nil {
		t.Fatalf("portfolio.Analyze: %v", err)
	}
	ref.portfolio = renderPortfolio(pres.Conclusion.String(), pres.DecidedBy)

	// The ∀∃ search is TGD-only; the daemon rejects /v1/exists for EGD
	// programs (400), so no reference is rendered for them.
	if prog.Database.Len() > 0 && !prog.TGDs.HasEGDs() {
		res := chase.SearchTerminatingDerivation(prog.Database, prog.TGDs, chase.SearchOptions{
			MaxStates: confExistsStates,
			MaxAtoms:  confExistsAtoms,
			Workers:   1,
		})
		der := make([]string, len(res.Derivation))
		for i, tr := range res.Derivation {
			der[i] = tr.String()
		}
		ref.exists = renderExists(existsVerdictName(res), res.StatesVisited, res.Stats, der)
	}
	return ref
}

func existsVerdictName(res *chase.ExistsResult) string {
	switch {
	case res.Found:
		return "found"
	case res.Exhausted:
		return "exhausted"
	case res.Cancelled:
		return "cancelled"
	default:
		return "budget"
	}
}

// driveCorpus runs every corpus program through both endpoints of ts and
// demands each response render bit-identically to its reference. regime
// labels the failure messages (cold/warm/restart).
func driveCorpus(t *testing.T, ts *testServer, corpus map[string]string, refs map[string]reference, regime string) {
	t.Helper()
	for name, src := range corpus {
		ref := refs[name]
		var dec DecideResponse
		postJSON(t, ts.url("/v1/decide"), DecideRequest{Program: src, GuardedBudget: confDecideSteps}, http.StatusOK, &dec)
		if got := renderDecide(dec.Verdict, dec.Reasons); got != ref.decide {
			t.Errorf("%s/%s: served decide drifted:\n  got  %s\n  want %s", regime, name, got, ref.decide)
		}
		var pf DecideResponse
		postJSON(t, ts.url("/v1/decide"), DecideRequest{Program: src, Portfolio: true, GuardedBudget: confDecideSteps}, http.StatusOK, &pf)
		if got := renderPortfolio(pf.Verdict, pf.DecidedBy); got != ref.portfolio {
			t.Errorf("%s/%s: served portfolio drifted:\n  got  %s\n  want %s", regime, name, got, ref.portfolio)
		}
		if len(pf.Stages) == 0 && !pf.CacheHit {
			t.Errorf("%s/%s: served portfolio carried no stage ledger and no cache hit", regime, name)
		}
		if ref.exists == "" {
			continue
		}
		var ex ExistsResponse
		postJSON(t, ts.url("/v1/exists"), ExistsRequest{Program: src, MaxStates: confExistsStates, MaxAtoms: confExistsAtoms}, http.StatusOK, &ex)
		if got := renderExists(ex.Verdict, ex.States, ex.Stats, ex.Derivation); got != ref.exists {
			t.Errorf("%s/%s: served exists drifted:\n  got  %s\n  want %s", regime, name, got, ref.exists)
		}
	}
}

// TestServeConformanceE2E is the tentpole's acceptance test: the full
// conformance corpus over HTTP, bit-identical to in-process analysis on a
// cold daemon, a warm daemon, and a daemon restarted from the first
// daemon's cache snapshot.
func TestServeConformanceE2E(t *testing.T) {
	corpus := corpusFiles(t)
	refs := make(map[string]reference, len(corpus))
	for name, src := range corpus {
		refs[name] = referenceFor(t, src)
	}

	first := newTestServer(t, Config{})
	driveCorpus(t, first, corpus, refs, "cold")
	driveCorpus(t, first, corpus, refs, "warm")
	if st := first.srv.Cache().Stats(); st.Hits == 0 {
		t.Error("warm pass recorded no cache hits on the shared cache")
	}

	// Restart: snapshot the daemon's cache to disk and boot a second daemon
	// from the file, exactly as termcheckd does across a restart.
	path := filepath.Join(t.TempDir(), "serve.cache")
	if err := chase.SaveCacheFile(first.srv.Cache(), path); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	restarted := newTestServer(t, Config{Cache: OpenCacheFile(path, t.Logf)})
	driveCorpus(t, restarted, corpus, refs, "restart")
	if st := restarted.srv.Cache().Stats(); st.Hits == 0 {
		t.Error("restarted daemon served the corpus without touching the restored cache")
	}
}

// TestServeErrorSurface pins the non-200 contract: method, decode,
// validation and timeout errors, each with a JSON error body.
func TestServeErrorSurface(t *testing.T) {
	ts := newTestServer(t, Config{})
	plain := "P(c).\nr: P(X) -> Q(X).\n"

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.url(path), "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data)
	}

	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"decide bad json", "/v1/decide", "{", http.StatusBadRequest},
		{"decide unknown field", "/v1/decide", `{"program":"r: P(X) -> Q(X).","budgett":3}`, http.StatusBadRequest},
		{"decide trailing data", "/v1/decide", `{"program":"r: P(X) -> Q(X)."} {}`, http.StatusBadRequest},
		{"decide empty program", "/v1/decide", `{"program":""}`, http.StatusBadRequest},
		{"decide parse error", "/v1/decide", `{"program":"r: P(X -> Q(X)."}`, http.StatusBadRequest},
		{"decide no tgds", "/v1/decide", `{"program":"P(c)."}`, http.StatusBadRequest},
		{"exists no facts", "/v1/exists", `{"program":"r: P(X) -> Q(X)."}`, http.StatusBadRequest},
		{"exists bad strategy", "/v1/exists", fmt.Sprintf(`{"program":%q,"strategy":"widest"}`, plain), http.StatusBadRequest},
		{"exists egd program", "/v1/exists", `{"program":"P(a,b). r: P(X,Y) -> P(Y,Z). k: P(X,Y), P(X,Z) -> Y = Z."}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		status, body := post(tc.path, tc.body)
		if status != tc.want {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, status, tc.want, body)
		}
		var e errorResponse
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not JSON {error}: %s", tc.name, body)
		}
	}

	for _, tc := range []struct {
		name   string
		method string
		path   string
		want   int
	}{
		{"decide GET", http.MethodGet, "/v1/decide", http.StatusMethodNotAllowed},
		{"exists GET", http.MethodGet, "/v1/exists", http.StatusMethodNotAllowed},
		{"stats POST", http.MethodPost, "/v1/stats", http.StatusMethodNotAllowed},
	} {
		req, _ := http.NewRequest(tc.method, ts.url(tc.path), nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// TestServeDecideTimeout pins the request-budget mapping: a decide that
// cannot finish inside timeout-ms comes back 504, and the underlying
// flight is counted cancelled.
func TestServeDecideTimeout(t *testing.T) {
	ts := newTestServer(t, Config{})
	src := workload.SwapIntro(14).Source // ~20s uncancelled; checks ctx per step
	status, body := rawPost(t, ts.url("/v1/decide"),
		fmt.Sprintf(`{"program":%q,"guarded-budget":100000,"timeout-ms":50}`, src))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", status, body)
	}
	if got := ts.srv.Stats().Flights.Cancelled; got != 1 {
		t.Errorf("flights cancelled = %d, want 1", got)
	}
}

// TestServeExistsTimeout pins the ∀∃ budget mapping: the search absorbs
// cancellation as data — a 200 with verdict "cancelled", no semantic claim.
func TestServeExistsTimeout(t *testing.T) {
	ts := newTestServer(t, Config{})
	src := programText(workload.StageGrid(12))
	var ex ExistsResponse
	postJSON(t, ts.url("/v1/exists"),
		json.RawMessage(fmt.Sprintf(`{"program":%q,"max-states":1000000,"max-atoms":100,"timeout-ms":100}`, src)),
		http.StatusOK, &ex)
	if ex.Verdict != "cancelled" {
		t.Fatalf("verdict = %q, want cancelled", ex.Verdict)
	}
}

// TestServeStats exercises /v1/stats and /healthz: request tallies, flight
// counters, the shared cache's counters and the portfolio decided-by tally
// all surface as JSON.
func TestServeStats(t *testing.T) {
	ts := newTestServer(t, Config{})
	src := "P(c).\nr: P(X) -> Q(X).\n"
	var dec DecideResponse
	postJSON(t, ts.url("/v1/decide"), DecideRequest{Program: src, Portfolio: true}, http.StatusOK, &dec)
	var ex ExistsResponse
	postJSON(t, ts.url("/v1/exists"), ExistsRequest{Program: src}, http.StatusOK, &ex)

	var health map[string]string
	getJSON(t, ts.url("/healthz"), http.StatusOK, &health)
	if health["status"] != "ok" {
		t.Errorf("healthz = %v", health)
	}

	var st StatsResponse
	getJSON(t, ts.url("/v1/stats"), http.StatusOK, &st)
	if st.Requests.Decide != 1 || st.Requests.Exists != 1 || st.Requests.Health != 1 {
		t.Errorf("request tallies = %+v", st.Requests)
	}
	if st.Flights.Started != 2 {
		t.Errorf("flights started = %d, want 2", st.Flights.Started)
	}
	if st.Exists.StatesExpanded == 0 {
		t.Errorf("exists aggregate empty: %+v", st.Exists)
	}
	total := int64(0)
	for _, n := range st.Portfolio {
		total += n
	}
	if total != 1 {
		t.Errorf("portfolio tally = %v, want one decision", st.Portfolio)
	}
	if st.Cache.Misses == 0 {
		t.Errorf("cache counters empty: %+v", st.Cache)
	}
	if st.UptimeMS < 0 {
		t.Errorf("uptime = %d", st.UptimeMS)
	}
}

// TestServeWarmIsSharedCache pins the tentpole's reason to exist: the SAME
// cache serves every request, so a second identical exists request is a
// whole-run cache replay — same rendering, cache hits recorded.
func TestServeWarmIsSharedCache(t *testing.T) {
	ts := newTestServer(t, Config{})
	src := programText(workload.StageGrid(6))
	req := ExistsRequest{Program: src, MaxStates: confExistsStates, MaxAtoms: confExistsAtoms}
	var cold, warm ExistsResponse
	postJSON(t, ts.url("/v1/exists"), req, http.StatusOK, &cold)
	hitsBefore := ts.srv.Cache().Stats().Hits
	postJSON(t, ts.url("/v1/exists"), req, http.StatusOK, &warm)
	if ts.srv.Cache().Stats().Hits == hitsBefore {
		t.Error("warm request recorded no cache hit")
	}
	cr := renderExists(cold.Verdict, cold.States, cold.Stats, cold.Derivation)
	wr := renderExists(warm.Verdict, warm.States, warm.Stats, warm.Derivation)
	if cr != wr {
		t.Errorf("warm rendering drifted from cold:\n  cold %s\n  warm %s", cr, wr)
	}
}

// rawPost posts a raw JSON string and returns status and body.
func rawPost(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data)
}

// programText renders a parsed program back to .chase source: facts then
// TGDs, exactly the grammar parser.Parse accepts.
func programText(prog *parser.Program) string {
	var b strings.Builder
	for _, a := range prog.Database.Atoms() {
		b.WriteString(a.String())
		b.WriteString(".\n")
	}
	for _, tgd := range prog.TGDs.TGDs {
		b.WriteString(tgd.String())
		b.WriteString(".\n")
	}
	return b.String()
}

// TestSnapshotterCadence pins the background saver: with a short cadence
// the snapshot file appears while the owner is still running, restores
// cleanly, and Close writes the final state exactly once.
func TestSnapshotterCadence(t *testing.T) {
	cache := chase.NewCache()
	prog := workload.StageGrid(4)
	chase.SearchTerminatingDerivation(prog.Database, prog.TGDs, chase.SearchOptions{
		MaxStates: 1000, MaxAtoms: 50, Cache: cache,
	})
	path := filepath.Join(t.TempDir(), "snap.cache")
	snap := NewSnapshotter(cache, path, 10*time.Millisecond, t.Logf)

	// The ticker must produce a snapshot without Close's help.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snap.Stats().Saves > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no background snapshot within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot file missing after background save: %v", err)
	}
	restored, rep, err := chase.LoadCacheFile(path)
	if err != nil || rep.Skipped > 0 || rep.Truncated {
		t.Fatalf("background snapshot did not restore cleanly: %v %+v", err, rep)
	}
	if restored.Stats().Entries == 0 {
		t.Error("background snapshot restored no entries")
	}

	savesBeforeClose := snap.Stats().Saves
	if err := snap.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st := snap.Stats()
	if st.Saves != savesBeforeClose+1 {
		t.Errorf("close saves = %d, want %d", st.Saves, savesBeforeClose+1)
	}
	if err := snap.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if snap.Stats().Saves != st.Saves {
		t.Error("second Close saved again; want exactly once")
	}
	if st.Errors != 0 || st.LastUnixMS == 0 || st.Path != path || st.EveryMS != 10 {
		t.Errorf("snapshot stats = %+v", st)
	}
}

// TestOpenCacheFile pins the shared loader's three paths: missing file →
// cold, good file → warm, corrupt file → reported and ignored.
func TestOpenCacheFile(t *testing.T) {
	dir := t.TempDir()
	if c := OpenCacheFile(filepath.Join(dir, "missing.cache"), t.Logf); c.Stats().Entries != 0 {
		t.Error("missing file did not start cold")
	}
	if c := OpenCacheFile("", t.Logf); c == nil {
		t.Error("empty path must still return a usable cache")
	}

	cache := chase.NewCache()
	prog := workload.StageGrid(3)
	chase.SearchTerminatingDerivation(prog.Database, prog.TGDs, chase.SearchOptions{
		MaxStates: 1000, MaxAtoms: 50, Cache: cache,
	})
	good := filepath.Join(dir, "good.cache")
	if err := chase.SaveCacheFile(cache, good); err != nil {
		t.Fatal(err)
	}
	if c := OpenCacheFile(good, t.Logf); c.Stats().Entries == 0 {
		t.Error("good snapshot did not restore entries")
	}

	bad := filepath.Join(dir, "bad.cache")
	if err := os.WriteFile(bad, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	var logged []string
	c := OpenCacheFile(bad, func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	})
	if c.Stats().Entries != 0 {
		t.Error("corrupt snapshot must start cold")
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "ignoring cache file") {
		t.Errorf("corrupt snapshot log = %v", logged)
	}
}
