package serve

// The request/response codec: the JSON wire shapes of the daemon's API and
// the translation between them and the library's native types. Key naming
// follows the CLI's stats-line vocabulary (dash-separated, lower case) so a
// `cache:` line and the /v1/stats cache object read identically; the shape
// is pinned by the round-trip tests in internal/chase (CacheStats) and the
// e2e suite here.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"

	"airct/internal/chase"
	"airct/internal/core"
	"airct/internal/parser"
	"airct/internal/portfolio"
)

// maxRequestBytes bounds a request body; programs are small text.
const maxRequestBytes = 1 << 20

// DecideRequest asks the ∀∀ question (CT^res_∀∀ membership) of the
// program's TGD set. Zero-valued budgets take the server's defaults (the
// same defaults as the termcheck CLI). Facts in the program are ignored by
// the decision; under portfolio=true they feed the non-authoritative ∀∃
// racer exactly as `termcheck -portfolio` does.
type DecideRequest struct {
	// Program is the .chase program text (facts + TGDs).
	Program string `json:"program"`
	// Portfolio routes the decision through the staged decider portfolio
	// (stages reported per response) instead of the flat analysis.
	Portfolio bool `json:"portfolio,omitempty"`
	// GuardedBudget is the per-seed chase step budget (0: 2000).
	GuardedBudget int `json:"guarded-budget,omitempty"`
	// StickyStates bounds each sticky Büchi component (0: 200000).
	StickyStates int `json:"sticky-states,omitempty"`
	// ProbeSteps is the portfolio Tier 1 probe budget k (0: default).
	ProbeSteps int `json:"probe-steps,omitempty"`
	// Workers sizes the portfolio Tier 2 racer pool and the guarded seed
	// pool (0: server default). Verdicts are worker-invariant.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS bounds the request's wall clock (0: server default; capped
	// by the server's maximum).
	TimeoutMS int64 `json:"timeout-ms,omitempty"`
}

// Stage is one portfolio stage record on the wire.
type Stage struct {
	Name      string  `json:"name"`
	Tier      int     `json:"tier"`
	Decided   bool    `json:"decided"`
	Verdict   string  `json:"verdict"`
	Detail    string  `json:"detail"`
	Steps     int     `json:"steps"`
	Seeds     int     `json:"seeds,omitempty"`
	Saturated int     `json:"saturated,omitempty"`
	Depth     int     `json:"depth,omitempty"`
	Evidence  string  `json:"evidence,omitempty"`
	ElapsedMS float64 `json:"elapsed-ms"`
}

// DecideResponse carries the ∀∀ verdict. Reasons is the flat analysis'
// justification trail; Stages is the portfolio's ledger — exactly one of
// the two is populated, matching the request's Portfolio flag.
type DecideResponse struct {
	Verdict   string   `json:"verdict"`
	DecidedBy string   `json:"decided-by,omitempty"`
	Reasons   []string `json:"reasons,omitempty"`
	Stages    []Stage  `json:"stages,omitempty"`
	// CacheHit is true when the portfolio replayed a whole cached run.
	CacheHit bool `json:"cache-hit"`
	// Shared is true when this request joined another in-flight identical
	// request instead of running its own analysis (singleflight).
	Shared    bool    `json:"shared"`
	ElapsedMS float64 `json:"elapsed-ms"`
}

// ExistsRequest asks the ∀∃ question: does the program's database admit a
// finite restricted chase derivation under the program's TGDs?
type ExistsRequest struct {
	Program string `json:"program"`
	// MaxStates bounds distinct instance states (0: 10000).
	MaxStates int `json:"max-states,omitempty"`
	// MaxAtoms bounds per-instance atoms (0: 200).
	MaxAtoms int `json:"max-atoms,omitempty"`
	// Strategy is the frontier discipline: smallest (default), bfs, dfs
	// or index.
	Strategy string `json:"strategy,omitempty"`
	// Workers shards the search (0: server default; verdict-invariant).
	Workers   int   `json:"workers,omitempty"`
	TimeoutMS int64 `json:"timeout-ms,omitempty"`
}

// ExistsResponse carries the ∀∃ verdict: found (a witness derivation is
// attached), exhausted (every derivation is infinite), budget (the state
// budget stopped the search) or cancelled (the request's deadline or
// disconnect stopped it; no semantic claim).
type ExistsResponse struct {
	Verdict string `json:"verdict"`
	// States counts distinct instances explored.
	States int `json:"states"`
	// Derivation is the witnessing trigger sequence when Verdict=found,
	// rendered exactly as `termcheck -exists` prints it.
	Derivation []string          `json:"derivation,omitempty"`
	Stats      chase.SearchStats `json:"stats"`
	Shared     bool              `json:"shared"`
	ElapsedMS  float64           `json:"elapsed-ms"`
}

// RequestStats tallies requests per endpoint.
type RequestStats struct {
	Decide int64 `json:"decide"`
	Exists int64 `json:"exists"`
	Stats  int64 `json:"stats"`
	Health int64 `json:"health"`
}

// FlightStats tallies the singleflight table's work: Started counts
// underlying analyses actually run, Deduped counts requests served by
// joining one, Shed counts 429s from the admission gate, Cancelled counts
// flights stopped by disconnect, timeout or shutdown.
type FlightStats struct {
	Started   int64 `json:"started"`
	Deduped   int64 `json:"deduped"`
	Shed      int64 `json:"shed"`
	Cancelled int64 `json:"cancelled"`
}

// SnapshotStats reports the background snapshotter's work.
type SnapshotStats struct {
	Path       string `json:"path,omitempty"`
	EveryMS    int64  `json:"every-ms"`
	Saves      int64  `json:"saves"`
	Errors     int64  `json:"errors"`
	LastUnixMS int64  `json:"last-unix-ms"`
}

// AdaptiveStats reports the cost-model layer: whether it is on, how often
// the Tier 1 probe's rejecting fast path decided, and the learned per-class
// stage orderings and probe budgets.
type AdaptiveStats struct {
	Enabled      bool                   `json:"enabled"`
	ProbeRejects int64                  `json:"probe-rejects"`
	Classes      []portfolio.ClassState `json:"classes,omitempty"`
}

// StatsResponse is the /v1/stats body: the shared cache's counters (the
// CLI's `cache:` line as JSON), the chase engine's aggregated activity-
// check and seed-index work (the `activity:` line), the aggregated ∀∃
// search work including the trigger-index and activity-recheck counters
// (the `trigger-index:` line), per-stage portfolio decision tallies (the
// `portfolio-stage:` lines' decisive outcomes, with the probe's rejecting
// fast path broken out as "probe-reject"), the adaptive cost-model state,
// and the serving-layer counters.
type StatsResponse struct {
	UptimeMS  int64                `json:"uptime-ms"`
	Requests  RequestStats         `json:"requests"`
	Flights   FlightStats          `json:"flights"`
	Cache     chase.CacheStats     `json:"cache"`
	Activity  chase.ActivityTotals `json:"activity"`
	Exists    chase.SearchStats    `json:"exists"`
	Portfolio map[string]int64     `json:"portfolio"`
	Adaptive  AdaptiveStats        `json:"adaptive"`
	Snapshot  SnapshotStats        `json:"snapshot"`
}

// errorResponse is every non-200 JSON body.
type errorResponse struct {
	Error string `json:"error"`
}

// decodeJSON reads a bounded JSON body, rejecting unknown fields so a
// misspelled budget key fails loudly instead of silently running with
// defaults.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return fmt.Errorf("invalid request body: trailing data")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// parseProgram parses and validates a request's program text.
func parseProgram(src string) (*parser.Program, error) {
	if src == "" {
		return nil, fmt.Errorf("empty program")
	}
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	if prog.TGDs.Len() == 0 && !prog.TGDs.HasEGDs() {
		return nil, fmt.Errorf("no TGDs in program")
	}
	return prog, nil
}

// decideSalt folds the decide question and its verdict-relevant budgets
// into the flight key, mirroring the cross-run cache's salting rule.
func decideSalt(portfolio bool, guardedBudget, stickyStates, probeSteps int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "decide|%t|%d|%d|%d", portfolio, guardedBudget, stickyStates, probeSteps)
	return h.Sum64()
}

// existsSalt folds the exists question's budgets and strategy.
func existsSalt(strategy chase.SearchStrategy, maxStates, maxAtoms int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "exists|%d|%d|%d", strategy, maxStates, maxAtoms)
	return h.Sum64()
}

// decideResponseOf renders a flat analysis report.
func decideResponseOf(rep *core.Report) DecideResponse {
	return DecideResponse{
		Verdict: rep.Conclusion.String(),
		Reasons: append([]string(nil), rep.Reasons...),
	}
}

// portfolioResponseOf renders a portfolio result.
func portfolioResponseOf(res *portfolio.Result) DecideResponse {
	out := DecideResponse{
		Verdict:   res.Conclusion.String(),
		DecidedBy: res.DecidedBy,
		CacheHit:  res.CacheHit,
		Stages:    make([]Stage, len(res.Stages)),
	}
	for i, s := range res.Stages {
		out.Stages[i] = Stage{
			Name:      s.Stage,
			Tier:      s.Tier,
			Decided:   s.Decided,
			Verdict:   s.Conclusion.String(),
			Detail:    s.Detail,
			Steps:     s.Steps,
			Seeds:     s.Seeds,
			Saturated: s.Saturated,
			Depth:     s.Depth,
			Evidence:  s.Evidence,
			ElapsedMS: float64(s.Duration.Microseconds()) / 1e3,
		}
	}
	return out
}

// existsResponseOf renders a search result.
func existsResponseOf(res *chase.ExistsResult) ExistsResponse {
	out := ExistsResponse{
		Verdict: existsVerdict(res),
		States:  res.StatesVisited,
		Stats:   res.Stats,
	}
	if res.Found {
		out.Derivation = make([]string, len(res.Derivation))
		for i, tr := range res.Derivation {
			out.Derivation[i] = tr.String()
		}
	}
	return out
}

func existsVerdict(res *chase.ExistsResult) string {
	switch {
	case res.Found:
		return "found"
	case res.Exhausted:
		return "exhausted"
	case res.Cancelled:
		return "cancelled"
	default:
		return "budget"
	}
}
