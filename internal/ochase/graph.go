// Package ochase implements the real oblivious chase of Definition 3.3: the
// smallest labeled directed graph ochase(D,T) whose nodes carry atoms and
// TGD-mapping pairs, closed under trigger application over node tuples. It
// is a *multiset* structure — the same atom can label many nodes, each
// remembering unambiguously which nodes produced it (the parent relation
// ≺p). On top of the graph the package provides the stop relation ≺s, the
// before relation ≺b, chaseable sets (Definition 5.2), and the two
// directions of Theorem 5.3: extracting a restricted chase derivation from a
// chaseable set, and a chaseable set from a restricted chase derivation.
//
// The paper's ochase(D,T) is generally infinite; Build materialises the
// fragment up to configurable node and depth bounds, which is exactly what
// the finite-fragment experiments need.
package ochase

import (
	"airct/internal/chase"
	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/tgds"
)

// NodeID indexes a node within its Graph.
type NodeID int

// Node is a vertex of the real oblivious chase: an atom labeled with the
// trigger that produced it (nil for database atoms, the paper's ⊥) and the
// ordered parent tuple — Parents[i] is the node matched to the i-th body
// atom of the trigger's TGD.
type Node struct {
	ID      NodeID
	Atom    logic.Atom
	Trigger *chase.Trigger // nil ⇔ database atom
	Parents []NodeID       // empty ⇔ database atom
	Depth   int            // 0 for database atoms, 1 + max parent depth otherwise
}

// IsDatabase reports whether the node is a database atom (τ(v) = ⊥).
func (n *Node) IsDatabase() bool { return n.Trigger == nil }

// BuildOptions bounds the materialised fragment of ochase(D,T).
type BuildOptions struct {
	// MaxNodes stops construction when this many nodes exist (0: 10_000).
	MaxNodes int
	// MaxDepth only creates nodes up to this derivation depth (0: no bound).
	MaxDepth int
}

func (o BuildOptions) maxNodes() int {
	if o.MaxNodes <= 0 {
		return 10_000
	}
	return o.MaxNodes
}

// Graph is a finite fragment of the real oblivious chase of D w.r.t. T.
type Graph struct {
	Set      *tgds.Set
	Database *instance.Database
	nodes    []*Node
	byPred   map[logic.Predicate][]*Node
	children map[NodeID][]NodeID
	// Complete reports whether the graph is the whole of ochase(D,T):
	// construction reached a fixpoint within the bounds.
	Complete bool
	nulls    *chase.NullFactory

	// (σ, h, parent tuple) identities, interned: [tgdIdx, binding TermIDs
	// in sorted-body-variable order, parent node IDs]. One table probe
	// answers "spawned before?" — no per-candidate key strings.
	itab     *logic.Interner
	seen     *logic.TupleTable
	seenBuf  []uint32
	bodyVars [][]logic.Term // sorted body variables per TGD index
}

// Build materialises ochase(D,T) up to the given bounds.
func Build(db *instance.Database, set *tgds.Set, opts BuildOptions) *Graph {
	g := &Graph{
		Set:      set,
		Database: db,
		byPred:   make(map[logic.Predicate][]*Node),
		children: make(map[NodeID][]NodeID),
		nulls:    chase.NewNullFactory(chase.StructuralNaming),
		itab:     logic.NewInterner(),
		seen:     logic.NewTupleTable(64),
		bodyVars: make([][]logic.Term, len(set.TGDs)),
	}
	for i, t := range set.TGDs {
		g.bodyVars[i] = t.BodyVars().Sorted()
	}
	for _, fact := range db.Atoms() {
		g.addNode(fact, nil, nil)
	}
	frontierStart := 0
	for {
		if len(g.nodes) >= opts.maxNodes() {
			g.Complete = false
			return g
		}
		next := len(g.nodes)
		added := g.expand(frontierStart, opts)
		frontierStart = next
		if !added {
			g.Complete = len(g.nodes) < opts.maxNodes()
			return g
		}
	}
}

func (g *Graph) addNode(atom logic.Atom, tr *chase.Trigger, parents []NodeID) *Node {
	depth := 0
	for _, p := range parents {
		if d := g.nodes[p].Depth + 1; d > depth {
			depth = d
		}
	}
	n := &Node{
		ID:      NodeID(len(g.nodes)),
		Atom:    atom,
		Trigger: tr,
		Parents: parents,
		Depth:   depth,
	}
	g.nodes = append(g.nodes, n)
	g.byPred[atom.Pred] = append(g.byPred[atom.Pred], n)
	for _, p := range parents {
		g.children[p] = append(g.children[p], n.ID)
	}
	return n
}

// expand performs one closure round: every (σ, h, parent-tuple) with at
// least one parent in the latest frontier (or any tuple in the first round)
// spawns a node. It reports whether any node was added.
func (g *Graph) expand(frontierStart int, opts BuildOptions) bool {
	added := false
	limit := len(g.nodes) // only match against pre-round nodes
	for idx, t := range g.Set.TGDs {
		g.matchBody(t, limit, func(h logic.Substitution, parents []NodeID) bool {
			if frontierStart > 0 {
				inFrontier := false
				for _, p := range parents {
					if int(p) >= frontierStart {
						inFrontier = true
						break
					}
				}
				if !inFrontier {
					return true
				}
			}
			if opts.MaxDepth > 0 {
				d := 0
				for _, p := range parents {
					if pd := g.nodes[p].Depth + 1; pd > d {
						d = pd
					}
				}
				if d > opts.MaxDepth {
					return true
				}
			}
			g.seenBuf = g.seenBuf[:0]
			g.seenBuf = append(g.seenBuf, uint32(idx))
			for _, v := range g.bodyVars[idx] {
				g.seenBuf = append(g.seenBuf, uint32(g.itab.InternTerm(h.ApplyTerm(v))))
			}
			for _, p := range parents {
				g.seenBuf = append(g.seenBuf, uint32(p))
			}
			if _, isNew := g.seen.Intern(g.seenBuf); !isNew {
				return true
			}
			tr := chase.NewTrigger(idx, t, h)
			result := chase.Result(tr, g.nulls)
			// Definition 3.3 is stated for single-head TGDs; for multi-head
			// sets we add one node per head atom sharing the parent tuple.
			for _, atom := range result {
				trc := tr
				g.addNode(atom, &trc, append([]NodeID(nil), parents...))
			}
			added = true
			return len(g.nodes) < opts.maxNodes()
		})
		if len(g.nodes) >= opts.maxNodes() {
			return added
		}
	}
	return added
}

// matchBody enumerates homomorphisms of t's body onto node tuples drawn from
// nodes[0:limit], yielding the substitution and the parent tuple. The yield
// function returns false to stop enumeration.
func (g *Graph) matchBody(t tgds.TGD, limit int, yield func(logic.Substitution, []NodeID) bool) {
	h := logic.NewSubstitution()
	parents := make([]NodeID, len(t.Body))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(t.Body) {
			return yield(h, parents)
		}
		pat := t.Body[i]
		for _, cand := range g.byPred[pat.Pred] {
			if int(cand.ID) >= limit {
				continue
			}
			var trail []logic.Term
			ok := true
			for k, v := range pat.Args {
				got := cand.Atom.Args[k]
				if bound, has := h.Lookup(v); has {
					if bound != got {
						ok = false
						break
					}
					continue
				}
				h[v] = got
				trail = append(trail, v)
			}
			if ok {
				parents[i] = cand.ID
				if !rec(i + 1) {
					for _, v := range trail {
						delete(h, v)
					}
					return false
				}
			}
			for _, v := range trail {
				delete(h, v)
			}
		}
		return true
	}
	rec(0)
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// Nodes returns all nodes in creation order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Children returns the node IDs whose parent tuples include id.
func (g *Graph) Children(id NodeID) []NodeID { return g.children[id] }

// AtomSet returns the *set* of atoms labelling the graph — by the remark in
// Section 3.1 this coincides with the (ordinary) oblivious chase of D
// w.r.t. T when the graph is complete.
func (g *Graph) AtomSet() *instance.Instance {
	out := instance.New()
	for _, n := range g.nodes {
		out.Add(n.Atom)
	}
	return out
}

// MultisetSize returns the number of nodes (atom copies); AtomSet().Len()
// counts distinct atoms.
func (g *Graph) MultisetSize() int { return len(g.nodes) }

// NodesByAtom returns the nodes labelled with the given atom, in creation
// order — the copies of the atom in the multiset.
func (g *Graph) NodesByAtom(a logic.Atom) []*Node {
	var out []*Node
	for _, n := range g.byPred[a.Pred] {
		if n.Atom.Equal(a) {
			out = append(out, n)
		}
	}
	return out
}

// GuardParent returns the guard-parent of the node: the parent matched to
// the guard atom of the producing TGD (Appendix C.2). It returns false for
// database nodes and for nodes produced by unguarded TGDs.
func (g *Graph) GuardParent(id NodeID) (NodeID, bool) {
	n := g.nodes[id]
	if n.IsDatabase() {
		return 0, false
	}
	gi := n.Trigger.TGD.GuardIndex()
	if gi < 0 {
		return 0, false
	}
	return n.Parents[gi], true
}

// SideParents returns the parents other than the guard, in body order.
func (g *Graph) SideParents(id NodeID) []NodeID {
	n := g.nodes[id]
	if n.IsDatabase() {
		return nil
	}
	gi := n.Trigger.TGD.GuardIndex()
	var out []NodeID
	for i, p := range n.Parents {
		if i != gi {
			out = append(out, p)
		}
	}
	return out
}

// Stops reports λ(v) ≺s λ(u): there is a homomorphism h′ with
// h′(λ(u)) = λ(v) fixing every frontier term of u's trigger (Section 3.1).
// It is false whenever u is a database node (no trigger to deactivate).
func (g *Graph) Stops(v, u NodeID) bool {
	nu := g.nodes[u]
	if nu.IsDatabase() {
		return false
	}
	return chase.Stops(g.nodes[v].Atom, nu.Atom, chase.FrontierTerms(*nu.Trigger))
}

// Before reports the one-step before relation v ≺b u:
// v is a database node and u is not, or v ≺p u, or u ≺s v.
func (g *Graph) Before(v, u NodeID) bool {
	nv, nu := g.nodes[v], g.nodes[u]
	if nv.IsDatabase() && !nu.IsDatabase() {
		return true
	}
	for _, p := range nu.Parents {
		if p == v {
			return true
		}
	}
	return g.Stops(u, v)
}

// IsParent reports v ≺p u.
func (g *Graph) IsParent(v, u NodeID) bool {
	for _, p := range g.nodes[u].Parents {
		if p == v {
			return true
		}
	}
	return false
}
