package ochase

import (
	"testing"

	"airct/internal/chase"
	"airct/internal/logic"
	"airct/internal/parser"
)

// example32 is Example 3.2/3.4 of the paper.
const example32 = `
	P(a,b).
	s1: P(X,Y) -> R(X,Y).
	s2: P(X,Y) -> S(X).
	s3: R(X,Y) -> S(X).
	s4: S(X) -> R(X,Y).
`

func TestExample34GraphShape(t *testing.T) {
	prog := parser.MustParse(example32)
	g := Build(prog.Database, prog.TGDs, BuildOptions{MaxNodes: 200})
	if g.Complete {
		t.Error("ochase of Example 3.4 is infinite; fragment must be incomplete")
	}
	// The *set* of atoms is the oblivious chase: exactly 4 atoms.
	atoms := g.AtomSet()
	if atoms.Len() != 4 {
		t.Errorf("oblivious chase has 4 atoms, got %v", atoms)
	}
	// The multiset keeps several copies of S(a): via s2 and via s3 (from
	// both copies of R-atoms).
	sCopies := g.NodesByAtom(logic.MustAtom("S", logic.Const("a")))
	if len(sCopies) < 2 {
		t.Errorf("S(a) must label several nodes, got %d", len(sCopies))
	}
	// The parents of the two earliest S(a) copies differ: one comes from
	// P(a,b) via s2, the other from R(a,b) via s3 (the ambiguity of
	// Example 3.2 made unambiguous).
	preds := map[string]bool{}
	for _, n := range sCopies {
		if len(n.Parents) != 1 {
			t.Fatalf("S(a) nodes have one parent, got %v", n.Parents)
		}
		preds[g.Node(n.Parents[0]).Atom.Pred.Name] = true
	}
	if !preds["P"] || !preds["R"] {
		t.Errorf("S(a) copies must have both P- and R-parents, got %v", preds)
	}
}

func TestDatabaseNodes(t *testing.T) {
	prog := parser.MustParse(example32)
	g := Build(prog.Database, prog.TGDs, BuildOptions{MaxNodes: 50})
	n := g.Node(0)
	if !n.IsDatabase() || n.Depth != 0 || len(n.Parents) != 0 {
		t.Errorf("node 0 must be the database atom: %+v", n)
	}
	if n.Atom.Pred.Name != "P" {
		t.Errorf("node 0 atom = %v", n.Atom)
	}
}

func TestStructuralNullSharing(t *testing.T) {
	// The two occurrences of the trigger (s4, x→a) — one for each S(a)
	// copy — must invent the *same* null (Definition 3.1's c^{σ,h}_x).
	prog := parser.MustParse(example32)
	g := Build(prog.Database, prog.TGDs, BuildOptions{MaxNodes: 200})
	var rAtoms []logic.Atom
	for _, n := range g.Nodes() {
		if !n.IsDatabase() && n.Trigger.TGD.Label == "s4" {
			rAtoms = append(rAtoms, n.Atom)
		}
	}
	if len(rAtoms) < 2 {
		t.Fatalf("expected several s4 nodes, got %d", len(rAtoms))
	}
	for _, a := range rAtoms[1:] {
		if !a.Equal(rAtoms[0]) {
			t.Errorf("same trigger must produce the same atom: %v vs %v", rAtoms[0], a)
		}
	}
}

func TestMaxDepth(t *testing.T) {
	prog := parser.MustParse(example32)
	g := Build(prog.Database, prog.TGDs, BuildOptions{MaxNodes: 10_000, MaxDepth: 3})
	for _, n := range g.Nodes() {
		if n.Depth > 3 {
			t.Fatalf("node %d has depth %d > 3", n.ID, n.Depth)
		}
	}
	if !g.Complete {
		t.Error("depth-bounded build must reach a fixpoint here")
	}
}

func TestCompleteOnTerminatingSet(t *testing.T) {
	prog := parser.MustParse(`
		P(a,b).
		s1: P(X,Y) -> R(X,Y).
		s2: R(X,Y) -> S(X).
	`)
	g := Build(prog.Database, prog.TGDs, BuildOptions{MaxNodes: 100})
	if !g.Complete {
		t.Fatal("finite ochase must be built completely")
	}
	if g.Len() != 3 {
		t.Errorf("nodes = %d, want 3", g.Len())
	}
	// Children bookkeeping.
	if kids := g.Children(0); len(kids) != 1 {
		t.Errorf("P(a,b) children = %v", kids)
	}
}

func TestGuardAndSideParents(t *testing.T) {
	prog := parser.MustParse(`
		R(a,b). T(b).
		s1: R(X,Y), T(Y) -> P(X,Y).
	`)
	g := Build(prog.Database, prog.TGDs, BuildOptions{MaxNodes: 50})
	var pNode *Node
	for _, n := range g.Nodes() {
		if n.Atom.Pred.Name == "P" {
			pNode = n
		}
	}
	if pNode == nil {
		t.Fatal("P atom missing")
	}
	gp, ok := g.GuardParent(pNode.ID)
	if !ok {
		t.Fatal("guard parent expected")
	}
	if g.Node(gp).Atom.Pred.Name != "R" {
		t.Errorf("guard parent = %v, want the R atom", g.Node(gp).Atom)
	}
	side := g.SideParents(pNode.ID)
	if len(side) != 1 || g.Node(side[0]).Atom.Pred.Name != "T" {
		t.Errorf("side parents = %v", side)
	}
	// Database nodes have neither.
	if _, ok := g.GuardParent(0); ok {
		t.Error("database node has no guard parent")
	}
	if g.SideParents(0) != nil {
		t.Error("database node has no side parents")
	}
}

func TestStopsOnGraph(t *testing.T) {
	// s4's product R(a,n) is stopped by R(a,b) (map n→b, fix frontier a).
	prog := parser.MustParse(example32)
	g := Build(prog.Database, prog.TGDs, BuildOptions{MaxNodes: 200})
	var rab, ran NodeID
	found := 0
	for _, n := range g.Nodes() {
		if n.Atom.Pred.Name == "R" {
			if n.Atom.Args[1].IsNull() && found&2 == 0 {
				ran = n.ID
				found |= 2
			}
			if n.Atom.Args[1] == logic.Const("b") && found&1 == 0 {
				rab = n.ID
				found |= 1
			}
		}
	}
	if found != 3 {
		t.Fatal("need both R(a,b) and R(a,null) nodes")
	}
	if !g.Stops(rab, ran) {
		t.Error("R(a,b) must stop R(a,null)")
	}
	if g.Stops(ran, rab) {
		t.Error("R(a,null) must not stop the database-frontier copy? (R(a,b) is produced by s1 with frontier {a,b}; mapping b→null moves a frontier term)")
	}
	// Nothing stops a database node.
	if g.Stops(rab, 0) {
		t.Error("database nodes are never stopped")
	}
}

func TestBeforeRelation(t *testing.T) {
	prog := parser.MustParse(example32)
	g := Build(prog.Database, prog.TGDs, BuildOptions{MaxNodes: 200})
	// Database atom comes before every non-database node.
	for _, n := range g.Nodes() {
		if !n.IsDatabase() {
			if !g.Before(0, n.ID) {
				t.Fatalf("database node must be ≺b %d", n.ID)
			}
		}
	}
	// Parents come before children.
	for _, n := range g.Nodes() {
		for _, p := range n.Parents {
			if !g.Before(p, n.ID) {
				t.Fatalf("parent %d must be ≺b child %d", p, n.ID)
			}
			if !g.IsParent(p, n.ID) {
				t.Fatalf("IsParent(%d,%d) must hold", p, n.ID)
			}
		}
	}
}

func TestGuardPathDepthsAndSubtree(t *testing.T) {
	prog := parser.MustParse(`
		S(a).
		s1: S(X) -> R(X,Y).
		s2: R(X,Y) -> Q(Y).
	`)
	g := Build(prog.Database, prog.TGDs, BuildOptions{MaxNodes: 100})
	depths := g.GuardPathDepths()
	if depths[0] != 0 {
		t.Error("database node depth 0")
	}
	sub := g.Subtree(0)
	if len(sub) != g.Len() {
		t.Errorf("everything descends from S(a): %v of %d nodes", sub, g.Len())
	}
	if len(g.DomTerms()) < 2 {
		t.Error("dom must include a and invented nulls")
	}
}

func TestMultisetVersusSetGrowth(t *testing.T) {
	// E1-style check: the multiset (real oblivious) is strictly larger than
	// the atom set on Example 3.4's program.
	prog := parser.MustParse(example32)
	g := Build(prog.Database, prog.TGDs, BuildOptions{MaxNodes: 300})
	if g.MultisetSize() <= g.AtomSet().Len() {
		t.Errorf("multiset %d must exceed set %d", g.MultisetSize(), g.AtomSet().Len())
	}
}

func TestMultiHeadNodes(t *testing.T) {
	prog := parser.MustParse(`
		R(a,b,b).
		mh: R(X,Y,Y) -> R(X,Z,Y), R(Z,Y,Y).
	`)
	g := Build(prog.Database, prog.TGDs, BuildOptions{MaxNodes: 20})
	// One trigger spawns two nodes sharing the parent tuple.
	var spawned []*Node
	for _, n := range g.Nodes() {
		if !n.IsDatabase() && n.Parents[0] == 0 {
			spawned = append(spawned, n)
		}
	}
	if len(spawned) < 2 {
		t.Fatalf("multi-head trigger must spawn 2 nodes, got %d", len(spawned))
	}
	if spawned[0].Atom.Args[1] != spawned[1].Atom.Args[0] {
		t.Error("shared existential null across head atoms")
	}
	_ = chase.Trigger{}
}
