package ochase

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"airct/internal/parser"
)

// randomSmallProgram emits a random 2-rule program with a 2-fact database;
// rules may invent values, so fragments are bounded.
func randomSmallProgram(seed int64) *parser.Program {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	consts := []string{"a", "b"}
	for i := 0; i < 2; i++ {
		fmt.Fprintf(&b, "P%d(%s,%s).\n", rng.Intn(2), consts[rng.Intn(2)], consts[rng.Intn(2)])
	}
	heads := []string{"P0(X,Y)", "P1(Y,X)", "P0(Y,W)", "P1(X,W)"}
	for i := 0; i < 2; i++ {
		fmt.Fprintf(&b, "P%d(X,Y) -> %s.\n", rng.Intn(2), heads[rng.Intn(len(heads))])
	}
	prog, err := parser.Parse(b.String())
	if err != nil {
		panic(err)
	}
	return prog
}

// Property: node depths are consistent (1 + max parent depth; 0 for
// database nodes) and the atom set of the fragment is contained in the
// engine's oblivious chase result.
func TestQuickGraphStructuralInvariants(t *testing.T) {
	f := func(seed int64) bool {
		prog := randomSmallProgram(seed % 3000)
		g := Build(prog.Database, prog.TGDs, BuildOptions{MaxNodes: 150, MaxDepth: 4})
		for _, n := range g.Nodes() {
			if n.IsDatabase() {
				if n.Depth != 0 || len(n.Parents) != 0 {
					return false
				}
				continue
			}
			want := 0
			for _, p := range n.Parents {
				if int(p) >= int(n.ID) {
					return false // parents precede children in creation order
				}
				if d := g.Node(p).Depth + 1; d > want {
					want = d
				}
			}
			if n.Depth != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: building twice yields identical fragments (determinism).
func TestQuickBuildDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		prog := randomSmallProgram(seed % 3000)
		g1 := Build(prog.Database, prog.TGDs, BuildOptions{MaxNodes: 100, MaxDepth: 3})
		g2 := Build(prog.Database, prog.TGDs, BuildOptions{MaxNodes: 100, MaxDepth: 3})
		if g1.Len() != g2.Len() {
			return false
		}
		for i := range g1.Nodes() {
			a, b := g1.Node(NodeID(i)), g2.Node(NodeID(i))
			if !a.Atom.Equal(b.Atom) || len(a.Parents) != len(b.Parents) {
				return false
			}
			for j := range a.Parents {
				if a.Parents[j] != b.Parents[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the before relation contains the parent relation and the
// DB-before-derived pairs.
func TestQuickBeforeContainsParents(t *testing.T) {
	f := func(seed int64) bool {
		prog := randomSmallProgram(seed % 3000)
		g := Build(prog.Database, prog.TGDs, BuildOptions{MaxNodes: 80, MaxDepth: 3})
		for _, n := range g.Nodes() {
			for _, p := range n.Parents {
				if !g.Before(p, n.ID) {
					return false
				}
			}
			if !n.IsDatabase() {
				for _, m := range g.Nodes() {
					if m.IsDatabase() && !g.Before(m.ID, n.ID) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
