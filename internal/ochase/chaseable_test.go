package ochase

import (
	"strings"
	"testing"

	"airct/internal/chase"
	"airct/internal/parser"
)

func TestChaseableFromRunAndBack(t *testing.T) {
	// Theorem 5.3 round trip on finite fragments: run the restricted chase,
	// project the derivation into ochase(D,T) (1 ⇒ 2), check chaseability,
	// and extract a derivation back (2 ⇒ 1).
	progs := []string{
		example32,
		`R(a,b). S(b,c).
		 t1: S(X,Y) -> T(X).
		 t2: R(X,Y), T(Y) -> P(X,Y).
		 t3: P(X,Y) -> Q(Y).`,
		`E(x1,x2). E(x2,x3).
		 tc: E(X,Y), E(Y,Z) -> E(X,Z).`,
	}
	for _, src := range progs {
		prog := parser.MustParse(src)
		run := chase.RunChase(prog.Database, prog.TGDs, chase.Options{Variant: chase.Restricted})
		if !run.Terminated() {
			t.Fatalf("program must terminate: %q", src)
		}
		g := Build(prog.Database, prog.TGDs, BuildOptions{MaxNodes: 5000})
		A, err := ChaseableFromRun(g, run)
		if err != nil {
			t.Fatalf("ChaseableFromRun(%q): %v", src, err)
		}
		if err := g.CheckChaseable(A); err != nil {
			t.Fatalf("derivation-induced set must be chaseable (%q): %v", src, err)
		}
		d, err := g.ExtractDerivation(A)
		if err != nil {
			t.Fatalf("ExtractDerivation(%q): %v", src, err)
		}
		if d.Len() != len(run.Steps) {
			t.Errorf("extracted %d steps, run had %d (%q)", d.Len(), len(run.Steps), src)
		}
		// The extracted derivation rebuilds the same atom set.
		if !d.Instance().Equal(run.Final) {
			t.Errorf("extracted instance differs for %q:\n%v\nvs\n%v",
				src, d.Instance(), run.Final)
		}
	}
}

func TestCheckChaseableParentClosure(t *testing.T) {
	prog := parser.MustParse(`
		S(a).
		s1: S(X) -> R(X,Y).
		s2: R(X,Y) -> Q(Y).
	`)
	g := Build(prog.Database, prog.TGDs, BuildOptions{MaxNodes: 100})
	// Find the Q node and include it without its R parent.
	var qID NodeID
	for _, n := range g.Nodes() {
		if n.Atom.Pred.Name == "Q" {
			qID = n.ID
		}
	}
	err := g.CheckChaseable([]NodeID{0, qID})
	if err == nil || !strings.Contains(err.Error(), "parent-closed") {
		t.Errorf("expected parent-closure violation, got %v", err)
	}
}

func TestCheckChaseableStopCycle(t *testing.T) {
	// Two copies of the same atom stop each other, so a set containing both
	// has a ≺b cycle (each must come before the other).
	prog := parser.MustParse(example32)
	g := Build(prog.Database, prog.TGDs, BuildOptions{MaxNodes: 300})
	var sCopies []NodeID
	for _, n := range g.Nodes() {
		if n.Atom.Pred.Name == "S" && !n.IsDatabase() {
			sCopies = append(sCopies, n.ID)
		}
		if len(sCopies) == 2 {
			break
		}
	}
	if len(sCopies) != 2 {
		t.Fatal("need two S(a) copies")
	}
	// Close under parents to isolate the cycle check.
	closure := map[NodeID]struct{}{}
	var addWithParents func(id NodeID)
	addWithParents = func(id NodeID) {
		if _, ok := closure[id]; ok {
			return
		}
		closure[id] = struct{}{}
		for _, p := range g.Node(id).Parents {
			addWithParents(p)
		}
	}
	for _, id := range sCopies {
		addWithParents(id)
	}
	var A []NodeID
	for id := range closure {
		A = append(A, id)
	}
	err := g.CheckChaseable(A)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("two copies of one atom must create a ≺b cycle, got %v", err)
	}
}

func TestExtractDerivationRefusesNonChaseable(t *testing.T) {
	prog := parser.MustParse(example32)
	g := Build(prog.Database, prog.TGDs, BuildOptions{MaxNodes: 100})
	var qID NodeID
	for _, n := range g.Nodes() {
		if !n.IsDatabase() {
			qID = n.ID
			break
		}
	}
	// Not parent-closed (missing the database node? node's parent is the DB
	// node 0; give only the child).
	if _, err := g.ExtractDerivation([]NodeID{qID}); err == nil {
		t.Error("non-chaseable set must be rejected")
	}
}

func TestExtractDerivationOnDivergingFamily(t *testing.T) {
	// S(a), S(X) -> R(X,Y), R(X,Y) -> S(Y): the restricted chase diverges.
	// Any parent-closed, stop-free prefix of ochase along the derivation is
	// chaseable; extraction must replay it.
	prog := parser.MustParse(`
		S(a).
		grow: S(X) -> R(X,Y).
		next: R(X,Y) -> S(Y).
	`)
	run := chase.RunChase(prog.Database, prog.TGDs,
		chase.Options{Variant: chase.Restricted, MaxSteps: 12})
	if run.Terminated() {
		t.Fatal("family diverges")
	}
	g := Build(prog.Database, prog.TGDs, BuildOptions{MaxNodes: 4000, MaxDepth: 14})
	A, err := ChaseableFromRun(g, run)
	if err != nil {
		t.Fatalf("ChaseableFromRun: %v", err)
	}
	if err := g.CheckChaseable(A); err != nil {
		t.Fatalf("prefix must be chaseable: %v", err)
	}
	d, err := g.ExtractDerivation(A)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 12 {
		t.Errorf("extracted %d steps, want 12", d.Len())
	}
}
