package ochase

import (
	"fmt"
	"sort"

	"airct/internal/chase"
	"airct/internal/logic"
)

// CheckChaseable verifies the conditions of Definition 5.2 on a finite set
// A of graph nodes:
//
//  1. for each α ∈ A, {β ∈ A : β ≺b⁺ α} is finite — automatic for finite A;
//  2. A is parent-closed: every parent of an A-node is in A;
//  3. the before relation ≺b restricted to A is acyclic.
//
// It returns nil when A is chaseable and a descriptive error otherwise.
func (g *Graph) CheckChaseable(A []NodeID) error {
	inA := make(map[NodeID]struct{}, len(A))
	for _, id := range A {
		inA[id] = struct{}{}
	}
	// Condition 2: parent closure.
	for _, id := range A {
		for _, p := range g.nodes[id].Parents {
			if _, ok := inA[p]; !ok {
				return fmt.Errorf("ochase: not parent-closed: parent %d (%v) of %d (%v) is outside A",
					p, g.nodes[p].Atom, id, g.nodes[id].Atom)
			}
		}
	}
	// Condition 3: acyclicity of ≺b over A (pairwise edges, DFS).
	adj := g.beforeAdjacency(A)
	color := make(map[NodeID]int, len(A)) // 0 white, 1 grey, 2 black
	var cycleAt NodeID
	var dfs func(v NodeID) bool
	dfs = func(v NodeID) bool {
		color[v] = 1
		for _, u := range adj[v] {
			switch color[u] {
			case 1:
				cycleAt = u
				return false
			case 0:
				if !dfs(u) {
					return false
				}
			}
		}
		color[v] = 2
		return true
	}
	for _, id := range A {
		if color[id] == 0 && !dfs(id) {
			return fmt.Errorf("ochase: ≺b has a cycle through node %d (%v)", cycleAt, g.nodes[cycleAt].Atom)
		}
	}
	return nil
}

// beforeAdjacency computes the one-step ≺b edges among the given nodes.
func (g *Graph) beforeAdjacency(A []NodeID) map[NodeID][]NodeID {
	adj := make(map[NodeID][]NodeID, len(A))
	for _, v := range A {
		for _, u := range A {
			if v != u && g.Before(v, u) {
				adj[v] = append(adj[v], u)
			}
		}
	}
	return adj
}

// ExtractDerivation realises the (2) ⇒ (1) direction of Theorem 5.3 on a
// finite fragment: given a chaseable set A, it builds a restricted chase
// derivation of D w.r.t. T that generates exactly the non-database atoms of
// A, adding atoms in a ≺b-compatible order and verifying at every step that
// the producing trigger is active (Fact 3.5). Database atoms of D outside A
// participate in I_0 regardless, matching the theorem's statement.
func (g *Graph) ExtractDerivation(A []NodeID) (*chase.Derivation, error) {
	if err := g.CheckChaseable(A); err != nil {
		return nil, err
	}
	adj := g.beforeAdjacency(A)
	indeg := make(map[NodeID]int, len(A))
	for _, id := range A {
		indeg[id] = 0
	}
	for _, targets := range adj {
		for _, u := range targets {
			indeg[u]++
		}
	}
	// Kahn's algorithm with deterministic (smallest-ID) tie-breaking.
	var ready []NodeID
	for _, id := range A {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	d := chase.NewDerivation(g.Database, g.Set)
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
		id := ready[0]
		ready = ready[1:]
		n := g.nodes[id]
		if !n.IsDatabase() {
			if err := d.Apply(*n.Trigger); err != nil {
				return nil, fmt.Errorf("ochase: node %d (%v): %w", id, n.Atom, err)
			}
		}
		for _, u := range adj[id] {
			indeg[u]--
			if indeg[u] == 0 {
				ready = append(ready, u)
			}
		}
	}
	if d.Len() != len(A)-g.countDatabaseNodes(A) {
		return nil, fmt.Errorf("ochase: topological order incomplete (cycle left %d nodes)",
			len(A)-g.countDatabaseNodes(A)-d.Len())
	}
	return d, nil
}

func (g *Graph) countDatabaseNodes(A []NodeID) int {
	n := 0
	for _, id := range A {
		if g.nodes[id].IsDatabase() {
			n++
		}
	}
	return n
}

// ChaseableFromRun realises the (1) ⇒ (2) direction of Theorem 5.3 on a
// finite prefix: given a restricted chase run of the same database and set,
// it selects for every derivation step the unique graph node whose trigger
// and parent occurrences match the run, returning the node set
// A = D ∪ {selected nodes}. The graph must contain the run's atoms (build
// it deep enough).
func ChaseableFromRun(g *Graph, run *chase.Run) ([]NodeID, error) {
	chosen := make(map[string]NodeID) // atom key -> designated occurrence
	var A []NodeID
	for _, n := range g.nodes {
		if n.IsDatabase() {
			chosen[n.Atom.Key()] = n.ID
			A = append(A, n.ID)
		}
	}
	for i, step := range run.Steps {
		trKey := step.Trigger.Key()
		// The parent occurrences this step used: the chosen nodes of the
		// body image atoms.
		bodyImage := step.Trigger.H.ApplyAtoms(step.Trigger.TGD.Body)
		want := make([]NodeID, len(bodyImage))
		for j, a := range bodyImage {
			id, ok := chosen[a.Key()]
			if !ok {
				return nil, fmt.Errorf("ochase: step %d: body atom %v has no designated occurrence", i, a)
			}
			want[j] = id
		}
		node := g.findNode(trKey, want)
		if node == nil {
			return nil, fmt.Errorf("ochase: step %d: no node for trigger %v with parents %v (graph too shallow?)",
				i, step.Trigger, want)
		}
		for _, a := range step.Added {
			if _, dup := chosen[a.Key()]; !dup {
				chosen[a.Key()] = node.ID
			}
		}
		A = append(A, node.ID)
	}
	return A, nil
}

func (g *Graph) findNode(triggerKey string, parents []NodeID) *Node {
	for _, n := range g.nodes {
		if n.IsDatabase() || n.Trigger.Key() != triggerKey {
			continue
		}
		if len(n.Parents) != len(parents) {
			continue
		}
		match := true
		for i := range parents {
			if n.Parents[i] != parents[i] {
				match = false
				break
			}
		}
		if match {
			return n
		}
	}
	return nil
}

// GuardPathDepths returns, for every node, its depth along the guard-parent
// forest (0 for roots); a helper for the guarded experiments.
func (g *Graph) GuardPathDepths() map[NodeID]int {
	out := make(map[NodeID]int, len(g.nodes))
	for _, n := range g.nodes {
		d := 0
		id := n.ID
		for {
			gp, ok := g.GuardParent(id)
			if !ok {
				break
			}
			d++
			id = gp
		}
		out[n.ID] = d
	}
	return out
}

// Subtree returns id together with every ≺gp-descendant of id (the set I_β
// of Section 5.2 computed on the fragment).
func (g *Graph) Subtree(id NodeID) []NodeID {
	var out []NodeID
	stack := []NodeID{id}
	seen := map[NodeID]struct{}{id: {}}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, v)
		for _, c := range g.children[v] {
			gp, ok := g.GuardParent(c)
			if !ok || gp != v {
				continue
			}
			if _, dup := seen[c]; dup {
				continue
			}
			seen[c] = struct{}{}
			stack = append(stack, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DomTerms returns the active domain of the fragment's atoms.
func (g *Graph) DomTerms() logic.TermSet {
	s := make(logic.TermSet)
	for _, n := range g.nodes {
		for _, t := range n.Atom.Args {
			s[t] = struct{}{}
		}
	}
	return s
}
